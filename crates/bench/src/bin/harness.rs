//! Smoke-test harness: runs a miniature version of every experiment in sequence.
//!
//! Used by the integration tests and by `EXPERIMENTS.md` readers who want a quick
//! end-to-end check before launching the full figure binaries.

use h2_bench::{run_h2ulv, run_lorapo, Scale, Workload};
use h2_factor::dist::{estimate_distributed, DistConfig};
use h2_runtime::{simulate_schedule, SimConfig};

fn main() -> h2_matrix::SolverResult<()> {
    // Force smoke sizes regardless of the environment.
    let scale = Scale::Smoke;
    let n = scale.scaling_size();
    println!("harness: smoke run with N = {n}");

    let (ours, ours_factors) = run_h2ulv(Workload::LaplaceCube, n, scale.leaf_size(), 1e-6)?;
    let (baseline, _) = run_lorapo(Workload::LaplaceCube, n, scale.blr_leaf_size(), 1e-6);
    println!(
        "fig09/fig10: OURS {:.3}s / {:.2e} flops (resid {:.1e}), LORAPO {:.3}s / {:.2e} flops (resid {:.1e})",
        ours.factor_seconds,
        ours.factor_flops as f64,
        ours.residual.unwrap_or(f64::NAN),
        baseline.factor_seconds,
        baseline.factor_flops as f64,
        baseline.residual.unwrap_or(f64::NAN),
    );
    assert!(ours.residual.unwrap() < 1e-3, "H2-ULV residual too large");
    assert!(baseline.residual.unwrap() < 1e-3, "BLR residual too large");

    let sim = simulate_schedule(
        &ours_factors.task_graph,
        &SimConfig {
            workers: 16,
            flops_per_second: 4.0e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        },
    );
    println!(
        "fig11: OURS simulated on 16 cores: {:.4}s (efficiency {:.2})",
        sim.makespan,
        sim.efficiency(16)
    );

    let dist = estimate_distributed(&ours_factors, 64, &DistConfig::default());
    println!(
        "fig16: OURS modelled on 64 ranks: {:.4}s ({:.4}s compute + {:.4}s comm)",
        dist.time_seconds, dist.compute_seconds, dist.comm_seconds
    );
    println!("harness: all smoke checks passed");
    Ok(())
}
