//! Figures 14–15: the boundary-element geometries of §V.
//!
//! The paper shows the mesh on a single hemoglobin (Fig. 14) and a crowded scene of
//! 64 hemoglobins (Fig. 15).  We cannot redistribute that mesh; this binary generates
//! the synthetic molecular surfaces that stand in for it (DESIGN.md §3) and reports
//! their geometric statistics — point counts, bounding boxes, leaf-cluster shapes and
//! neighbour counts under strong admissibility — which are the properties the solver
//! actually depends on.

use h2_bench::print_table;
use h2_geometry::{
    crowded_scene, molecule_surface, Aabb, Admissibility, ClusterTree, MoleculeConfig,
    PartitionStrategy,
};
use h2_hmatrix::BlockPartition;

fn describe(name: &str, points: &[h2_geometry::Point3], rows: &mut Vec<Vec<String>>) {
    let bb = Aabb::from_points(points);
    let leaf = 64.min(points.len() / 4).max(8);
    let tree = ClusterTree::build(points, leaf, PartitionStrategy::KMeans, 0);
    let part = BlockPartition::build(&tree, &Admissibility::strong(1.0));
    let leaves = tree.num_leaves();
    let max_neighbours = part.max_neighbours();
    let admissible_leaf = part.admissible_pairs(tree.depth).len();
    rows.push(vec![
        name.to_string(),
        points.len().to_string(),
        format!("{:.1}", bb.diameter()),
        leaves.to_string(),
        max_neighbours.to_string(),
        admissible_leaf.to_string(),
    ]);
}

fn main() {
    let cfg = MoleculeConfig::default();
    let single = molecule_surface(2000, &cfg);
    let crowded = crowded_scene(8000, 64, &cfg);
    let mut rows = Vec::new();
    describe("single molecule (Fig. 14 stand-in)", &single, &mut rows);
    describe(
        "crowded 64-molecule scene (Fig. 15 stand-in)",
        &crowded,
        &mut rows,
    );
    print_table(
        "Figs. 14-15: synthetic molecular-surface geometries",
        &[
            "geometry",
            "points",
            "bbox diameter",
            "leaf clusters",
            "max dense neighbours/row",
            "admissible leaf pairs",
        ],
        &rows,
    );
    println!(
        "\nThe crowded scene's clusters have far fewer dense neighbours per row relative to the\n\
         number of clusters, which is what keeps the H2 factorization O(N) on complex geometry."
    );
}
