//! Figure 13: execution trace of the LORAPO run — runtime overhead vs useful work.
//!
//! The paper shows a PaRSEC trace on 64 cores in which "the sizes of the red
//! (overhead) tasks are almost similar to the sizes of the useful computation".  We
//! replay the BLR LU task DAG on 64 virtual workers with a per-task runtime overhead
//! and report the same breakdown, plus a CSV export of the full timeline, and contrast
//! it with the dependency-free H²-ULV DAG executed without a runtime system.

use h2_bench::{print_table, run_h2ulv, Scale, Workload};
use h2_runtime::{simulate_schedule, SimConfig};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let n = scale.scaling_size();
    let cores = 64;
    let tile = scale.blr_leaf_size().min(n / 4).max(64);
    let tiles = (n / tile).max(2);
    let lorapo_dag = h2_lorapo::build_blr_lu_dag(tiles, tile, 50.min(tile));
    let lorapo_res = simulate_schedule(
        &lorapo_dag,
        &SimConfig {
            workers: cores,
            flops_per_second: 4.0e9,
            per_task_overhead: 2.0e-4,
            min_task_time: 0.0,
        },
    );
    let (_, ours) = run_h2ulv(Workload::LaplaceCube, n, scale.leaf_size(), 1e-6)?;
    let ours_res = simulate_schedule(
        &ours.task_graph,
        &SimConfig {
            workers: cores,
            flops_per_second: 4.0e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        },
    );

    let mut rows = Vec::new();
    for (name, res) in [
        ("LORAPO + runtime", &lorapo_res),
        ("OURS (no runtime)", &ours_res),
    ] {
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", res.makespan),
            format!("{:.3}", res.trace.overhead_fraction()),
            format!("{:.3}", res.trace.utilization()),
            format!("{}", res.trace.events.len()),
        ]);
    }
    print_table(
        &format!("Fig. 13: trace summary, N = {n}, {cores} simulated cores"),
        &[
            "run",
            "makespan (s)",
            "overhead fraction",
            "utilization",
            "trace events",
        ],
        &rows,
    );
    println!("\nLORAPO per-kind busy time:");
    for (kind, t) in lorapo_res.trace.breakdown() {
        println!("  {kind:10} {t:.4} s");
    }
    // CSV export of the LORAPO timeline (the raw data behind the paper's trace plot).
    let path = std::env::temp_dir().join("h2ulv_fig13_lorapo_trace.csv");
    if std::fs::write(&path, lorapo_res.trace.to_csv()).is_ok() {
        println!("\nfull LORAPO trace written to {}", path.display());
    }
    Ok(())
}
