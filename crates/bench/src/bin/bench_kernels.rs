//! Dense-kernel throughput sweep: GEMM / QR / pivoted QR / LU / Cholesky.
//!
//! Measures GFLOP/s of the packed microkernel stack against the seed (simple
//! blocked loop) GEMM, across sizes and thread counts, and writes the results
//! to `BENCH_kernels.json` so the performance trajectory of the repository is
//! machine-readable from PR to PR.
//!
//! Usage:
//! ```text
//! RAYON_NUM_THREADS=4 cargo run --release -p h2_bench --bin bench_kernels [out.json]
//! ```
//! Thread counts beyond the host's cores are still measured (the kernel is
//! bitwise deterministic at any thread count) but cannot show real scaling;
//! `host.available_cores` in the JSON records what the machine could do.

use h2_matrix::{
    cholesky_factor, gemm_seed, householder_qr, lu_factor, matmul, matmul_f32, pivoted_qr, Matrix,
    MatrixF32,
};
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-reps wall time of `f`, with one warmup call.  Minimum time is the
/// standard throughput estimator on shared machines: every other sample is
/// the same computation plus scheduling noise.
fn time_seconds(mut f: impl FnMut(), reps: usize) -> f64 {
    f();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn spd(n: usize, rng: &mut impl rand::Rng) -> Matrix {
    let b = Matrix::random(n, n, rng);
    let mut a = h2_matrix::gemm::matmul_nt(&b, &b);
    for i in 0..n {
        let v = a.get(i, i);
        a.set(i, i, v + n as f64);
    }
    a
}

struct GemmRow {
    n: usize,
    seed_gflops: f64,
    packed: Vec<(usize, f64)>, // (threads, gflops)
    f32_gflops: f64,           // single-precision packed kernel, 1 thread
}

struct FactorRow {
    n: usize,
    gflops: f64,
    seconds: f64,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let mut rng = rand::rngs::StdRng::seed_from_u64(20260729);
    let reps = 7;
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rayon_threads = rayon::current_num_threads();
    let thread_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= rayon_threads)
        .collect();

    println!("bench_kernels: cores={available}, rayon threads={rayon_threads}, sweeping {thread_counts:?}");

    // ------------------------------------------------------------------ GEMM
    let mut gemm_rows = Vec::new();
    for &n in &[128usize, 256, 512, 1024] {
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        let gflop = 2.0 * (n as f64).powi(3) / 1e9;
        let seed_t = time_seconds(
            || {
                std::hint::black_box(gemm_seed(&a, &b));
            },
            reps,
        );
        let mut packed = Vec::new();
        for &t in &thread_counts {
            h2_matrix::kernel::set_thread_cap(t);
            let pt = time_seconds(
                || {
                    std::hint::black_box(matmul(&a, &b));
                },
                reps,
            );
            packed.push((t, gflop / pt));
        }
        // Mixed-precision gap: the same packed microkernel shape in f32.  The
        // SRFT compressor mixes its sketches in single precision, so this row
        // records how much of the 2x memory-bandwidth headroom the f32 kernel
        // actually converts into throughput on this host.
        h2_matrix::kernel::set_thread_cap(1);
        let a32 = MatrixF32::from_f64(&a);
        let b32 = MatrixF32::from_f64(&b);
        let f32_t = time_seconds(
            || {
                std::hint::black_box(matmul_f32(&a32, &b32));
            },
            reps,
        );
        h2_matrix::kernel::set_thread_cap(0);
        let row = GemmRow {
            n,
            seed_gflops: gflop / seed_t,
            packed,
            f32_gflops: gflop / f32_t,
        };
        let p1 = row.packed.first().map(|&(_, g)| g).unwrap_or(f64::NAN);
        println!(
            "gemm n={n}: seed {:.2} GF/s, packed(1t) {:.2} GF/s ({:.1}x), f32(1t) {:.2} GF/s ({:.2}x vs f64){}",
            row.seed_gflops,
            p1,
            p1 / row.seed_gflops,
            row.f32_gflops,
            row.f32_gflops / p1,
            row.packed
                .iter()
                .skip(1)
                .fold(String::new(), |mut s, &(t, g)| {
                    let _ = write!(s, ", {t}t {g:.2}");
                    s
                }),
        );
        gemm_rows.push(row);
    }

    // ------------------------------------------------- one-shot factorizations
    let factor = |name: &str,
                  sizes: &[usize],
                  flops: &dyn Fn(f64) -> f64,
                  run: &mut dyn FnMut(usize, &mut rand::rngs::StdRng)| {
        let mut rows = Vec::new();
        let mut local_rng = rand::rngs::StdRng::seed_from_u64(7 + name.len() as u64);
        for &n in sizes {
            let secs = {
                let mut f = || run(n, &mut local_rng);
                time_seconds(&mut f, reps)
            };
            let gf = flops(n as f64) / 1e9 / secs;
            println!("{name} n={n}: {gf:.2} GF/s ({secs:.4}s)");
            rows.push(FactorRow {
                n,
                gflops: gf,
                seconds: secs,
            });
        }
        rows
    };

    let sizes = [128usize, 256, 512];
    let mut qr_in: Vec<Matrix> = Vec::new();
    let mut lu_in: Vec<Matrix> = Vec::new();
    let mut chol_in: Vec<Matrix> = Vec::new();
    for &n in &sizes {
        qr_in.push(Matrix::random(n, n, &mut rng));
        lu_in.push(spd(n, &mut rng));
        chol_in.push(spd(n, &mut rng));
    }
    fn pick(set: &[Matrix], n: usize) -> &Matrix {
        set.iter().find(|m| m.rows() == n).unwrap()
    }

    let qr_rows = factor("qr", &sizes, &|n| 4.0 / 3.0 * n * n * n, &mut |n, _| {
        std::hint::black_box(householder_qr(pick(&qr_in, n)));
    });
    let pqr_rows = factor(
        "pivoted_qr",
        &sizes,
        &|n| 4.0 / 3.0 * n * n * n,
        &mut |n, _| {
            std::hint::black_box(pivoted_qr(pick(&qr_in, n)));
        },
    );
    let lu_rows = factor("lu", &sizes, &|n| 2.0 / 3.0 * n * n * n, &mut |n, _| {
        std::hint::black_box(lu_factor(pick(&lu_in, n)).unwrap());
    });
    let chol_rows = factor(
        "cholesky",
        &sizes,
        &|n| 1.0 / 3.0 * n * n * n,
        &mut |n, _| {
            std::hint::black_box(cholesky_factor(pick(&chol_in, n)).unwrap());
        },
    );

    // ------------------------------------------------------------------ JSON
    let mut j = String::new();
    j.push_str("{\n");
    // Schema 2: adds per-size `f32_gflops` / `f32_speedup_vs_f64` to the gemm
    // rows (single-precision packed kernel, 1 thread) — the raw-kernel side of
    // the mixed-precision SRFT compression story.
    let _ = writeln!(j, "  \"schema_version\": 2,");
    let _ = writeln!(
        j,
        "  \"host\": {{\"available_cores\": {available}, \"rayon_threads\": {rayon_threads}}},"
    );
    let _ = writeln!(j, "  \"units\": \"gflops\",");
    j.push_str("  \"gemm\": [\n");
    for (i, r) in gemm_rows.iter().enumerate() {
        let packed: Vec<String> = r
            .packed
            .iter()
            .map(|&(t, g)| format!("{{\"threads\": {t}, \"gflops\": {}}}", json_f(g)))
            .collect();
        let speedup = r
            .packed
            .first()
            .map(|&(_, g)| g / r.seed_gflops)
            .unwrap_or(f64::NAN);
        let f32_speedup = r
            .packed
            .first()
            .map(|&(_, g)| r.f32_gflops / g)
            .unwrap_or(f64::NAN);
        let _ = write!(
            j,
            "    {{\"n\": {}, \"seed_gflops\": {}, \"packed\": [{}], \"speedup_1t\": {}, \"f32_gflops\": {}, \"f32_speedup_vs_f64\": {}}}",
            r.n,
            json_f(r.seed_gflops),
            packed.join(", "),
            json_f(speedup),
            json_f(r.f32_gflops),
            json_f(f32_speedup)
        );
        j.push_str(if i + 1 < gemm_rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    for (name, rows, last) in [
        ("qr", &qr_rows, false),
        ("pivoted_qr", &pqr_rows, false),
        ("lu", &lu_rows, false),
        ("cholesky", &chol_rows, true),
    ] {
        let _ = writeln!(j, "  \"{name}\": [");
        for (i, r) in rows.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"n\": {}, \"gflops\": {}, \"seconds\": {}}}",
                r.n,
                json_f(r.gflops),
                json_f(r.seconds)
            );
            j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        j.push_str(if last { "  ]\n" } else { "  ],\n" });
    }
    j.push_str("}\n");
    std::fs::write(&out_path, &j).expect("bench_kernels: cannot write output JSON");
    println!("bench_kernels: wrote {out_path}");
}
