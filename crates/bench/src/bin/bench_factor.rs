//! End-to-end factorization benchmark: wall-clock vs problem size and vs pool
//! threads.
//!
//! For every problem size in the scale's sweep, the H²-ULV factorization runs
//! once per pool-thread count {1, 2, 4} through the fused task graph (one
//! graph spanning construction and factorization, merges released per parent
//! pair), and the results land in `BENCH_factor.json`: wall-clock seconds, the
//! construction/factorization split, per-task-class times with the measured
//! construction↔factorization overlap fraction, flop counts, the
//! thread-scaling speedups, and a fingerprint of the factors proving bitwise
//! identity across thread counts (the graph's determinism contract).
//!
//! Usage:
//! ```text
//! H2_BENCH_SCALE=small cargo run --release -p h2_bench --bin bench_factor [out.json]
//! ```
//! Thread counts beyond the host's cores are still measured — they cannot show
//! real speedup (oversubscription), but the bitwise-identity check and the
//! scheduling overhead they expose are meaningful on any host;
//! `host.available_cores` records what the machine could do.

use h2_bench::{
    build_kernel, build_points, build_tree, compression_name, h2_options, Scale, Workload,
};
use h2_factor::{h2_ulv_nodep, RecoveryEvents, Schedule, UlvFactors};
use h2_matrix::Matrix;
use h2_mpisim::{CommConfig, CommStats, Universe};
use std::fmt::Write as _;
use std::time::Instant;

/// FNV-1a over the raw bit patterns of every factor matrix: two factorizations
/// agree on this hash iff they are bitwise identical (up to hash collisions).
fn fingerprint(f: &UlvFactors) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat_u64 = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    let eat_matrix = |m: &Matrix, eat: &mut dyn FnMut(u64)| {
        eat(m.rows() as u64);
        eat(m.cols() as u64);
        for v in m.as_slice() {
            eat(v.to_bits());
        }
    };
    eat_matrix(&f.root_lu.lu, &mut eat_u64);
    for &p in &f.root_lu.ipiv {
        eat_u64(p as u64);
    }
    for lf in &f.levels {
        for c in &lf.clusters {
            eat_matrix(&c.q, &mut eat_u64);
            eat_matrix(&c.p, &mut eat_u64);
            if let Some(lu) = &c.lu {
                eat_matrix(&lu.lu, &mut eat_u64);
            }
        }
        // Panels, visited in sorted key order so the hash is well-defined.
        for map in [&lf.row_rr, &lf.row_rs, &lf.col_rr, &lf.col_sr] {
            let mut keys: Vec<_> = map.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                eat_u64(key.0 as u64);
                eat_u64(key.1 as u64);
                eat_matrix(&map[&key], &mut eat_u64);
            }
        }
    }
    h
}

struct ThreadRun {
    threads: usize,
    wall_seconds: f64,
    factor_seconds: f64,
    construction_seconds: f64,
    phases: h2_factor::PhaseBreakdown,
    task_classes: h2_factor::TaskClassBreakdown,
    factor_flops: u64,
    fingerprint: u64,
}

struct SizeRow {
    n: usize,
    max_rank: usize,
    residual: Option<f64>,
    cap_hits: Vec<usize>,
    runs: Vec<ThreadRun>,
}

/// Rows sampled by the residual estimator (exact residual when n <= probes).
const RESIDUAL_PROBES: usize = 1024;

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn main() -> h2_matrix::SolverResult<()> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_factor.json".to_string());
    let scale = Scale::from_env();
    // H2_BENCH_SIZES overrides the scale's sweep with an explicit list
    // (comma-separated), e.g. H2_BENCH_SIZES=2048,8192.
    let sizes: Vec<usize> = match std::env::var("H2_BENCH_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => scale.sweep_sizes(),
    };
    let leaf = scale.leaf_size();
    let tol = 1e-6;
    // When H2_NUM_THREADS is set, run exactly one configuration that leaves
    // `num_threads = 0` so the factorization resolves the count from the
    // environment — this is what the CI construction tripwire diffs across
    // H2_NUM_THREADS={1,4}.  Otherwise sweep the explicit {1, 2, 4} counts.
    let env_threads: Option<usize> = std::env::var("H2_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0);
    let thread_counts: Vec<usize> = match env_threads {
        Some(_) => vec![0],
        None => vec![1, 2, 4],
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let compression = compression_name(h2_options(tol).compression);
    println!(
        "bench_factor: cores={available}, sizes={sizes:?}, leaf={leaf}, threads={thread_counts:?}, compression={compression}"
    );

    let mut rows: Vec<SizeRow> = Vec::new();
    // Aggregated over every factorization in the sweep: all zero on a healthy
    // run, non-zero counts mean the recovery ladder (or the refinement
    // escalation) absorbed a numerical breakdown somewhere.
    let mut recovery = RecoveryEvents::default();
    let mut refine_escalations: u64 = 0;
    for &n in &sizes {
        let points = build_points(Workload::LaplaceCube, n, 20 + n as u64);
        let n = points.len();
        let kernel = build_kernel(Workload::LaplaceCube);
        let tree = build_tree(&points, leaf);
        let mut row = SizeRow {
            n,
            max_rank: 0,
            residual: None,
            cap_hits: Vec::new(),
            runs: Vec::new(),
        };
        for &t in &thread_counts {
            let mut opts = h2_options(tol);
            opts.num_threads = t;
            // Reference-path switches for A/B accuracy runs (see BENCHMARKS.md):
            // H2_COMPRESSION picks the basis compressor (handled in h2_options),
            // H2_REF_DIRECT_QR forces the direct QR regardless, and
            // H2_REF_EXACT_COUPLINGS disables skeleton-interpolated couplings
            // and far fields.
            if std::env::var("H2_REF_DIRECT_QR").is_ok() {
                opts.compression = h2_factor::CompressionMode::Direct;
            }
            if std::env::var("H2_REF_EXACT_COUPLINGS").is_ok() {
                opts.skeleton_construction = false;
            }
            let t0 = Instant::now();
            let factors = h2_ulv_nodep(kernel.as_ref(), &tree, &opts)?;
            let wall = t0.elapsed().as_secs_f64();
            let t = env_threads.unwrap_or(t);
            let fp = fingerprint(&factors);
            let ph = factors.stats.phases;
            let tc = factors.stats.task_classes;
            println!(
                "n={n} threads={t}: wall {wall:.3}s (factor {:.3}s, construction {:.3}s \
                 [asm {:.3} cmp {:.3} cpl {:.3} xfer {:.3}], overlap {:.0}%), fingerprint {fp:016x}",
                factors.stats.factorization_seconds,
                factors.stats.construction_seconds,
                ph.assembly_seconds,
                ph.compression_seconds,
                ph.coupling_seconds,
                ph.transfer_seconds,
                tc.overlap_fraction * 100.0,
            );
            row.max_rank = factors.stats.max_rank;
            row.cap_hits = factors.stats.level_cap_hits.clone();
            let rec = factors.stats.recovery;
            recovery.srft_f32_to_f64 += rec.srft_f32_to_f64;
            recovery.srft_to_gaussian += rec.srft_to_gaussian;
            recovery.sketch_to_direct += rec.sketch_to_direct;
            recovery.pivot_shifts += rec.pivot_shifts;
            if row.runs.is_empty() {
                // Sampled-row residual estimator: O(probes · n) kernel entries, so
                // every sweep row carries an accuracy number (exact when n <= probes).
                // Solved the way the configuration prescribes (refinement is on
                // only for mixed-precision compression), outside the timed region.
                let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64 - 11.0) / 11.0).collect();
                let x =
                    factors.solve_refined(kernel.as_ref(), &b, factors.default_refine_steps())?;
                row.residual =
                    Some(factors.residual_sampled(kernel.as_ref(), &b, &x, RESIDUAL_PROBES, 7)?);
                refine_escalations += factors
                    .refine_escalations
                    .load(std::sync::atomic::Ordering::Relaxed);
            }
            row.runs.push(ThreadRun {
                threads: t,
                wall_seconds: wall,
                factor_seconds: factors.stats.factorization_seconds,
                construction_seconds: factors.stats.construction_seconds,
                phases: ph,
                task_classes: tc,
                factor_flops: factors.stats.factorization_flops,
                fingerprint: fp,
            });
        }
        let identical = row
            .runs
            .windows(2)
            .all(|w| w[0].fingerprint == w[1].fingerprint);
        assert!(
            identical,
            "factors differ bitwise across thread counts at n={n} — determinism bug"
        );
        rows.push(row);
    }

    // Distributed smoke: the process-tree communication pattern on 4 live
    // in-process ranks (transport and deadlines from H2_TRANSPORT /
    // H2_COMM_DEADLINE_MS), recorded per rank so a benchmark consumer can see
    // the reliability layer's work — retries/timeouts/corrupt frames are all
    // zero on a healthy host and non-zero under H2_FAULT network chaos.
    let comm_cfg = CommConfig::from_env();
    const SMOKE_RANKS: usize = 4;
    let (smoke, comm_stats): (Vec<_>, CommStats) =
        Universe::run_config_with_stats(SMOKE_RANKS, &comm_cfg, |mut comm| {
            let mine = vec![comm.rank() as f64 + 0.25; 8];
            let all = comm.allgather(1, &mine)?;
            comm.barrier(2)?;
            let mut sub = comm.split((comm.rank() % 2) as i64, comm.rank() as i64)?;
            let sums = sub.allreduce_sum(3, &mine)?;
            Ok::<usize, h2_mpisim::CommError>(all.len() + sums.len())
        });
    let smoke_ok = smoke.iter().all(|r| r.is_ok());
    println!(
        "comm smoke ({:?} transport, {SMOKE_RANKS} ranks): ok={smoke_ok}, messages={}, retries={}, timeouts={}",
        comm_cfg.transport,
        comm_stats.total_messages(),
        comm_stats.total_retries(),
        comm_stats.total_timeouts(),
    );

    // ------------------------------------------------------------------- JSON
    let mut j = String::new();
    j.push_str("{\n");
    // Schema 5: construction and factorization now run as ONE fused task graph
    // (per-parent-pair merge release, no level barriers), so each run carries a
    // `fused` block — per-task-class CPU seconds plus the measured wall spans
    // of the construction and factorization task groups and their
    // `overlap_fraction` (intersection over graph wall, non-null and > 0 on a
    // fused multi-thread run).  `problem.schedule` records the effective
    // schedule (`H2_SCHEDULE` overrides the default).
    // Schema 4 added the top-level `robustness` block — the sweep's aggregated
    // recovery-ladder counters, refinement escalations, and a per-rank
    // communicator smoke test (reliability counters over 4 live ranks).
    // Schema 3 added `problem.compression`, per-run `*_wall_seconds` breakdown
    // fields (the `*_seconds` fields are per-phase CPU work, which legitimately
    // exceeds the construction wall at threads > 1 — the wall fields attribute
    // the measured DAG span instead and sum to at most it), and per-row
    // `cap_hits` (rank-cap truncations per level, leaf first).
    let _ = writeln!(j, "  \"schema_version\": 5,");
    let _ = writeln!(j, "  \"host\": {{\"available_cores\": {available}}},");
    let schedule = format!("{:?}", Schedule::default().resolve()).to_lowercase();
    let _ = writeln!(
        j,
        "  \"problem\": {{\"workload\": \"laplace-cube\", \"leaf\": {leaf}, \"tol\": {tol:e}, \"solver\": \"h2-ulv-nodep\", \"schedule\": \"{schedule}\", \"compression\": \"{compression}\", \"residual_estimator\": {{\"kind\": \"sampled-rows\", \"probes\": {RESIDUAL_PROBES}}}}},"
    );
    j.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let runs: Vec<String> = r
            .runs
            .iter()
            .map(|t| {
                let tc = &t.task_classes;
                format!(
                    "{{\"threads\": {}, \"wall_seconds\": {}, \"factor_seconds\": {}, \"construction_seconds\": {}, \"construction_breakdown\": {{\"assembly_seconds\": {}, \"compression_seconds\": {}, \"coupling_seconds\": {}, \"transfer_seconds\": {}, \"assembly_wall_seconds\": {}, \"compression_wall_seconds\": {}, \"coupling_wall_seconds\": {}, \"transfer_wall_seconds\": {}}}, \"fused\": {{\"fill_seconds\": {}, \"basis_seconds\": {}, \"coupling_seconds\": {}, \"transform_seconds\": {}, \"pivot_seconds\": {}, \"schur_seconds\": {}, \"merge_seconds\": {}, \"map_seconds\": {}, \"root_seconds\": {}, \"graph_wall_seconds\": {}, \"construction_span_seconds\": {}, \"factorization_span_seconds\": {}, \"overlap_fraction\": {}}}, \"factor_gflop\": {}, \"fingerprint\": \"{:016x}\"}}",
                    t.threads,
                    json_f(t.wall_seconds),
                    json_f(t.factor_seconds),
                    json_f(t.construction_seconds),
                    json_f(t.phases.assembly_seconds),
                    json_f(t.phases.compression_seconds),
                    json_f(t.phases.coupling_seconds),
                    json_f(t.phases.transfer_seconds),
                    json_f(t.phases.assembly_wall_seconds),
                    json_f(t.phases.compression_wall_seconds),
                    json_f(t.phases.coupling_wall_seconds),
                    json_f(t.phases.transfer_wall_seconds),
                    json_f(tc.fill_seconds),
                    json_f(tc.basis_seconds),
                    json_f(tc.coupling_seconds),
                    json_f(tc.transform_seconds),
                    json_f(tc.pivot_seconds),
                    json_f(tc.schur_seconds),
                    json_f(tc.merge_seconds),
                    json_f(tc.map_seconds),
                    json_f(tc.root_seconds),
                    json_f(tc.graph_wall_seconds),
                    json_f(tc.construction_span_seconds),
                    json_f(tc.factorization_span_seconds),
                    json_f(tc.overlap_fraction),
                    json_f(t.factor_flops as f64 / 1e9),
                    t.fingerprint
                )
            })
            .collect();
        let t1 = r.runs.iter().find(|t| t.threads == 1);
        let speedup = |tn: usize| -> f64 {
            match (t1, r.runs.iter().find(|t| t.threads == tn)) {
                (Some(a), Some(b)) if b.wall_seconds > 0.0 => a.wall_seconds / b.wall_seconds,
                _ => f64::NAN,
            }
        };
        // Non-finite residuals (diverged factorization) must serialize as null,
        // not as the invalid-JSON token `NaN`/`inf`.
        let residual = r
            .residual
            .filter(|v| v.is_finite())
            .map(|v| format!("{v:.3e}"))
            .unwrap_or_else(|| "null".to_string());
        let cap_hits: Vec<String> = r.cap_hits.iter().map(|h| h.to_string()).collect();
        let _ = write!(
            j,
            "    {{\"n\": {}, \"max_rank\": {}, \"residual\": {}, \"cap_hits\": [{}], \"runs\": [{}], \"speedup_2t\": {}, \"speedup_4t\": {}, \"bitwise_identical\": true}}",
            r.n,
            r.max_rank,
            residual,
            cap_hits.join(", "),
            runs.join(", "),
            json_f(speedup(2)),
            json_f(speedup(4)),
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"robustness\": {{\n    \"recovery_events\": {{\"srft_f32_to_f64\": {}, \"srft_to_gaussian\": {}, \"sketch_to_direct\": {}, \"pivot_shifts\": {}, \"total\": {}}},\n    \"refine_escalations\": {refine_escalations},",
        recovery.srft_f32_to_f64,
        recovery.srft_to_gaussian,
        recovery.sketch_to_direct,
        recovery.pivot_shifts,
        recovery.total(),
    );
    let per_rank: Vec<String> = (0..SMOKE_RANKS)
        .map(|r| {
            format!(
                "{{\"rank\": {r}, \"messages\": {}, \"bytes\": {}, \"retries\": {}, \"timeouts\": {}, \"corrupt_frames\": {}, \"duplicates\": {}, \"rank_failures\": {}}}",
                comm_stats.messages_from(r),
                comm_stats.bytes_from(r),
                comm_stats.retries_from(r),
                comm_stats.timeouts_from(r),
                comm_stats.corrupt_frames_from(r),
                comm_stats.duplicates_from(r),
                comm_stats.rank_failures_from(r),
            )
        })
        .collect();
    let _ = writeln!(
        j,
        "    \"comm_smoke\": {{\"ranks\": {SMOKE_RANKS}, \"transport\": \"{}\", \"ok\": {smoke_ok}, \"per_rank\": [\n      {}\n    ], \"totals\": {{\"messages\": {}, \"bytes\": {}, \"retries\": {}, \"timeouts\": {}, \"corrupt_frames\": {}, \"duplicates\": {}, \"rank_failures\": {}}}}}",
        format!("{:?}", comm_cfg.transport).to_lowercase(),
        per_rank.join(",\n      "),
        comm_stats.total_messages(),
        comm_stats.total_bytes(),
        comm_stats.total_retries(),
        comm_stats.total_timeouts(),
        comm_stats.total_corrupt_frames(),
        comm_stats.total_duplicates(),
        comm_stats.total_rank_failures(),
    );
    j.push_str("  }\n");
    j.push_str("}\n");
    std::fs::write(&out_path, &j)
        .unwrap_or_else(|e| panic!("bench_factor: cannot write output JSON: {e}"));
    println!("bench_factor: wrote {out_path}");
    Ok(())
}
