//! Ablation: H²-ULV with vs without trailing sub-matrix dependencies.
//!
//! Same numerical work, different dependency structure: the with-dependencies variant
//! chains every block row/column elimination (§II-D of the paper), the
//! dependency-free variant runs each level as one parallel-for (§III).  The ablation
//! compares the recorded task graphs (critical path, average parallelism) and the
//! simulated strong scaling of both.

use h2_bench::{print_table, Scale, Workload};
use h2_factor::{h2_ulv_dep, h2_ulv_nodep};
use h2_runtime::{simulate_schedule, SimConfig};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let n = scale.scaling_size();
    let points = h2_bench::build_points(Workload::LaplaceCube, n, 11);
    let kernel = h2_bench::build_kernel(Workload::LaplaceCube);
    let tree = h2_bench::build_tree(&points, scale.leaf_size());
    let opts = h2_bench::h2_options(1e-8);

    let nodep = h2_ulv_nodep(kernel.as_ref(), &tree, &opts)?;
    let dep = h2_ulv_dep(kernel.as_ref(), &tree, &opts)?;

    println!("=== Ablation: trailing dependencies, N = {n} ===");
    for (name, f) in [
        ("no dependencies (paper)", &nodep),
        ("with dependencies (II-D)", &dep),
    ] {
        let g = &f.task_graph;
        println!(
            "{name:28} tasks = {:5}  total work = {:.3e}  critical path = {:.3e}  avg parallelism = {:.1}",
            g.len(),
            g.total_work(),
            g.critical_path(),
            g.total_work() / g.critical_path().max(1.0),
        );
    }

    let cores = [1usize, 4, 16, 64, 128];
    let mut rows = Vec::new();
    for &p in &cores {
        let cfg = SimConfig {
            workers: p,
            flops_per_second: 4.0e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let t_nodep = simulate_schedule(&nodep.task_graph, &cfg).makespan;
        let t_dep = simulate_schedule(&dep.task_graph, &cfg).makespan;
        rows.push(vec![
            p.to_string(),
            format!("{:.4}", t_nodep),
            format!("{:.4}", t_dep),
            format!("{:.1}x", t_dep / t_nodep.max(1e-12)),
        ]);
    }
    print_table(
        "simulated strong scaling of the two variants",
        &[
            "cores",
            "no-dep time (s)",
            "with-dep time (s)",
            "with-dep / no-dep",
        ],
        &rows,
    );
    Ok(())
}
