//! Figure 11 (a, b): strong scaling on a single node, ours vs LORAPO.
//!
//! The paper measures wall-clock on up to 128 physical cores.  The reproduction
//! machine has one core, so the measured task DAGs of both solvers are replayed on
//! 1..128 *virtual* cores by the discrete-event scheduler simulator
//! (`h2-runtime::sim`), with a per-task runtime overhead applied to the LORAPO DAG to
//! model PaRSEC (the overhead the paper's Fig. 13 trace makes visible).  The paper's
//! qualitative result — the dependency-free H²-ULV keeps scaling while LORAPO flattens
//! — is a property of the DAGs, which is exactly what this reproduces.

use h2_bench::{print_table, run_h2ulv, run_lorapo, Scale, Workload};
use h2_runtime::{simulate_schedule, SimConfig};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let cores = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let sizes = [scale.scaling_size() / 2, scale.scaling_size()];
    for &n in &sizes {
        let (_, ours) = run_h2ulv(Workload::LaplaceCube, n, scale.leaf_size(), 1e-6)?;
        let (_, _baseline) = run_lorapo(
            Workload::LaplaceCube,
            n.min(2048),
            scale.blr_leaf_size(),
            1e-8,
        );
        // LORAPO's DAG for the full problem size (built analytically from tile counts so
        // the DAG covers the same N even when the measured run used a smaller instance).
        let tiles = (n / scale.blr_leaf_size()).max(2);
        let lorapo_dag = h2_lorapo::build_blr_lu_dag(tiles, scale.blr_leaf_size(), 50);

        let mut rows = Vec::new();
        for &p in &cores {
            let ours_res = simulate_schedule(
                &ours.task_graph,
                &SimConfig {
                    workers: p,
                    flops_per_second: 4.0e9,
                    per_task_overhead: 0.0,
                    min_task_time: 0.0,
                },
            );
            let lorapo_res = simulate_schedule(
                &lorapo_dag,
                &SimConfig {
                    workers: p,
                    flops_per_second: 4.0e9,
                    per_task_overhead: 2.0e-4,
                    min_task_time: 0.0,
                },
            );
            rows.push(vec![
                p.to_string(),
                format!("{:.4}", ours_res.makespan),
                format!("{:.4}", lorapo_res.makespan),
                format!("{:.2}", ours_res.efficiency(p)),
                format!("{:.2}", lorapo_res.efficiency(p)),
            ]);
        }
        print_table(
            &format!("Fig. 11: simulated strong scaling, N = {n}"),
            &[
                "cores",
                "OURS time (s)",
                "LORAPO time (s)",
                "OURS eff",
                "LORAPO eff",
            ],
            &rows,
        );
    }
    Ok(())
}
