//! Figure 16: distributed-memory strong scaling on the hemoglobin/Yukawa problem,
//! ours vs LORAPO, up to 10,240 cores.
//!
//! The reproduction cannot run 10,240 ranks; instead the measured factorization is
//! replayed through the process-tree + (alpha, beta) network cost model of
//! `h2-factor::dist` (see DESIGN.md §3).  LORAPO's distributed time is modelled from
//! its task DAG (critical path + per-task runtime overhead + the same network model),
//! which reproduces the paper's qualitative result: the O(N) dependency-free solver
//! keeps scaling, the O(N^2) baseline does not, and the gap widens with N.

use h2_bench::{print_table, run_h2ulv, Scale, Workload};
use h2_factor::dist::{estimate_distributed, replay_skeleton_exchange, DistConfig};
use h2_mpisim::{allgather_time, CommConfig, NetworkModel};
use h2_runtime::{simulate_schedule, SimConfig};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let ranks = [64usize, 160, 320, 640, 1280, 2560, 5120, 10240];
    for &n in &scale.distributed_sizes() {
        let (_, ours) = run_h2ulv(Workload::YukawaMolecule, n, scale.leaf_size(), 1e-6)?;
        // Sanity-check the communication pattern on real in-process ranks
        // before trusting the cost model: 4 ranks run the level-by-level
        // split + allgather of the measured skeleton sizes (transport and
        // deadlines from H2_TRANSPORT / H2_COMM_DEADLINE_MS) and must agree
        // on one digest.  A communicator fault propagates as a typed error.
        let digests = replay_skeleton_exchange(&ours, 4, &CommConfig::from_env())?;
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "skeleton-exchange replay diverged across ranks: {digests:?}"
        );
        println!(
            "skeleton-exchange replay on 4 live ranks agreed (digest {:016x})",
            digests[0]
        );
        let tile = scale.blr_leaf_size().min(n / 4).max(64);
        let tiles = (n / tile).max(2);
        let lorapo_dag = h2_lorapo::build_blr_lu_dag(tiles, tile, 50.min(tile));
        let net = NetworkModel::default();

        let mut rows = Vec::new();
        for &p in &ranks {
            let ours_est = estimate_distributed(&ours, p, &DistConfig::default());
            // LORAPO model: DAG replay on p workers plus one allgather of the panel per
            // tile column (its communication volume grows with N^2 / p).
            let sim = simulate_schedule(
                &lorapo_dag,
                &SimConfig {
                    workers: p,
                    flops_per_second: 4.0e9,
                    per_task_overhead: 2.0e-4,
                    min_task_time: 0.0,
                },
            );
            let panel_bytes = (tile * tile * 8) as u64;
            let lorapo_comm: f64 = (0..tiles)
                .map(|_| allgather_time(&net, p.min(tiles * tiles), panel_bytes))
                .sum();
            let lorapo_time = sim.makespan + lorapo_comm;
            rows.push(vec![
                p.to_string(),
                format!("{:.4}", ours_est.time_seconds),
                format!("{:.4}", lorapo_time),
                format!("{:.1}", lorapo_time / ours_est.time_seconds.max(1e-12)),
            ]);
        }
        print_table(
            &format!("Fig. 16: modelled distributed strong scaling, Yukawa molecule, N = {n}"),
            &[
                "ranks",
                "OURS time (s)",
                "LORAPO time (s)",
                "speedup OURS vs LORAPO",
            ],
            &rows,
        );
    }
    println!(
        "\npaper's headline: ~4,700x at N = 954,112 on 10,240 cores; the scaled-down model shows\n\
         the same qualitative behaviour (the gap grows with both N and core count)."
    );
    Ok(())
}
