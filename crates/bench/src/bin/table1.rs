//! Table I: the low-rank structure zoo and its complexities.
//!
//! The paper's Table I lists the formats (BLR, BLR², HODLR, H, HSS, H²) with their
//! basis type, admissibility and factorization complexity.  This binary builds the
//! formats implemented in this repository over a size sweep, measures storage and
//! factorization flops empirically, and fits the complexity exponents so the table can
//! be checked rather than quoted.

use h2_bench::{fit_exponent, print_table, Scale, Workload};
use h2_factor::{blr2_ulv, h2_ulv_nodep, hss_ulv, FactorOptions};
use h2_geometry::Admissibility;
use h2_hmatrix::{BasisMode, BlrMatrix};
use h2_lorapo::{BlrLuFactors, BlrLuOptions};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = scale.sweep_sizes().into_iter().take(3).collect();
    let tol = 1e-6;
    let mut per_format: Vec<(&str, Vec<f64>, Vec<f64>)> = Vec::new(); // (name, storage, flops)

    let mut blr_storage = Vec::new();
    let mut blr_flops = Vec::new();
    let mut blr2_storage = Vec::new();
    let mut blr2_flops = Vec::new();
    let mut hss_storage = Vec::new();
    let mut hss_flops = Vec::new();
    let mut h2_storage = Vec::new();
    let mut h2_flops = Vec::new();

    for &n in &sizes {
        let points = h2_bench::build_points(Workload::LaplaceCube, n, 3);
        let kernel = h2_bench::build_kernel(Workload::LaplaceCube);
        let tree = h2_bench::build_tree(&points, scale.leaf_size());

        // BLR (independent bases) + its LU.
        let blr = BlrMatrix::build(kernel.as_ref(), &tree, &Admissibility::weak(), tol, 50);
        blr_storage.push(blr.storage() as f64);
        let f = BlrLuFactors::factor_blr(
            blr,
            &BlrLuOptions {
                tol,
                max_rank: 50,
                admissibility: Admissibility::weak(),
            },
        );
        blr_flops.push(f.stats.factorization_flops as f64);

        // BLR2 (shared bases, single level).
        let opts = FactorOptions {
            tol,
            basis_mode: BasisMode::Sampled { max_samples: 384 },
            ..FactorOptions::default()
        };
        let blr2 = blr2_ulv(kernel.as_ref(), &tree, &opts)?;
        blr2_storage.push(blr2.stats.memory_words as f64);
        blr2_flops.push(blr2.stats.factorization_flops as f64);

        // HSS (shared nested bases, weak admissibility).
        let hss = hss_ulv(kernel.as_ref(), &tree, &opts)?;
        hss_storage.push(hss.stats.memory_words as f64);
        hss_flops.push(hss.stats.factorization_flops as f64);

        // H2 (shared nested bases, strong admissibility) — the paper's method.
        let h2 = h2_ulv_nodep(kernel.as_ref(), &tree, &opts)?;
        h2_storage.push(h2.stats.memory_words as f64);
        h2_flops.push(h2.stats.factorization_flops as f64);
    }
    per_format.push(("BLR   (indep, weak)", blr_storage, blr_flops));
    per_format.push(("BLR2  (shared, weak)", blr2_storage, blr2_flops));
    per_format.push(("HSS   (nested, weak)", hss_storage, hss_flops));
    per_format.push(("H2    (nested, strong)", h2_storage, h2_flops));

    let ns: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let mut rows = Vec::new();
    for (name, storage, flops) in &per_format {
        rows.push(vec![
            name.to_string(),
            storage
                .iter()
                .map(|v| format!("{v:.2e}"))
                .collect::<Vec<_>>()
                .join(" / "),
            format!("N^{:.2}", fit_exponent(&ns, storage)),
            format!("N^{:.2}", fit_exponent(&ns, flops)),
        ]);
    }
    print_table(
        &format!("Table I (empirical): storage and factorization complexity, N = {sizes:?}"),
        &[
            "format",
            "storage (words)",
            "storage exponent",
            "factor-flops exponent",
        ],
        &rows,
    );
    println!(
        "\npaper's table: BLR O(N^2), BLR2 O(N^1.8), HSS O(N) (2-D only), H2 O(N);\n\
         at 3-D geometry and these small sizes the hierarchical formats' exponents sit between\n\
         1 and 2 and drop toward 1 as N grows."
    );
    Ok(())
}
