//! Figure 9 (a, b): factorization time vs problem size, ours vs LORAPO, on one core,
//! for relative tolerances 1e-6 and 1e-8 (Laplace kernel, uniform cube).
//!
//! The paper's N range is 2^14..2^18 on a 128-core node; the reproduction sweeps a
//! scaled-down range (see `H2_BENCH_SCALE`) but reports the same quantities: wall-clock
//! factorization time per solver and the fitted complexity exponent (ours ~O(N), the
//! BLR baseline ~O(N^2)).

use h2_bench::{fit_exponent, print_table, run_h2ulv, run_lorapo, Scale, Workload};

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let sizes = scale.sweep_sizes();
    for &tol in &[1e-6f64, 1e-8] {
        let mut rows = Vec::new();
        let mut ns = Vec::new();
        let mut ours_t = Vec::new();
        let mut lorapo_t = Vec::new();
        for &n in &sizes {
            let (ours, _) = run_h2ulv(Workload::LaplaceCube, n, scale.leaf_size(), tol)?;
            let (baseline, _) = run_lorapo(Workload::LaplaceCube, n, scale.blr_leaf_size(), tol);
            ns.push(n as f64);
            ours_t.push(ours.factor_seconds.max(1e-6));
            lorapo_t.push(baseline.factor_seconds.max(1e-6));
            rows.push(vec![
                n.to_string(),
                format!("{:.3}", ours.factor_seconds),
                format!("{:.3}", baseline.factor_seconds),
                format!("{}", ours.max_rank),
                format!("{}", baseline.max_rank),
                ours.residual
                    .map(|r| format!("{r:.2e}"))
                    .unwrap_or_else(|| "-".into()),
                baseline
                    .residual
                    .map(|r| format!("{r:.2e}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        print_table(
            &format!("Fig. 9: factorization time vs N (tol = {tol:.0e}, single core)"),
            &[
                "N",
                "OURS time (s)",
                "LORAPO time (s)",
                "OURS max rank",
                "LORAPO max rank",
                "OURS resid",
                "LORAPO resid",
            ],
            &rows,
        );
        println!(
            "fitted complexity exponents: OURS O(N^{:.2}), LORAPO O(N^{:.2})  (paper: ~1 vs ~2)",
            fit_exponent(&ns, &ours_t),
            fit_exponent(&ns, &lorapo_t)
        );
    }
    Ok(())
}
