//! Ablation: tolerance sweep and exact vs sampled basis construction.
//!
//! For a fixed problem, sweep the compression tolerance and report the resulting
//! solve accuracy (relative residual against an exact matrix-vector product), the
//! maximum rank and the factorization time — and compare the exact basis construction
//! (the paper's literal algorithm) with the sampled construction used at scale.

use h2_bench::{print_table, Scale, Workload};
use h2_factor::{h2_ulv_nodep, FactorOptions};
use h2_geometry::Admissibility;
use h2_hmatrix::BasisMode;

fn main() -> h2_matrix::SolverResult<()> {
    let scale = Scale::from_env();
    let n = match scale {
        Scale::Smoke => 512,
        _ => 2048,
    };
    let points = h2_bench::build_points(Workload::LaplaceCube, n, 9);
    let kernel = h2_bench::build_kernel(Workload::LaplaceCube);
    let tree = h2_bench::build_tree(&points, scale.leaf_size());
    let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64 - 8.0) / 8.0).collect();

    let mut rows = Vec::new();
    for &tol in &[1e-4f64, 1e-6, 1e-8, 1e-10] {
        for (mode_name, mode) in [
            ("exact", BasisMode::Exact),
            ("sampled", BasisMode::Sampled { max_samples: 512 }),
        ] {
            let opts = FactorOptions {
                tol,
                max_rank: Some(384),
                admissibility: Admissibility::strong(1.0),
                basis_mode: mode,
                ..FactorOptions::default()
            };
            let f = h2_ulv_nodep(kernel.as_ref(), &tree, &opts)?;
            let x = f.solve(&b)?;
            let resid = f.residual_with(kernel.as_ref(), &b, &x);
            rows.push(vec![
                format!("{tol:.0e}"),
                mode_name.to_string(),
                format!("{resid:.2e}"),
                f.stats.max_rank.to_string(),
                format!("{:.3}", f.stats.factorization_seconds),
                format!("{:.3}", f.stats.construction_seconds),
            ]);
        }
    }
    print_table(
        &format!("Ablation: tolerance sweep, Laplace cube, N = {n}"),
        &[
            "tol",
            "basis",
            "residual",
            "max rank",
            "factor (s)",
            "construct (s)",
        ],
        &rows,
    );
    Ok(())
}
