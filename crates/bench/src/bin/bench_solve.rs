//! Solve-phase throughput benchmark: solves/sec vs RHS batch width and
//! problem size.
//!
//! The factorization is the expensive phase; solves against stored factors
//! are memory-bound (about two flops per loaded factor entry), so streaming
//! one RHS at a time leaves most of the memory traffic unamortized.  The
//! blocked panel solve (`vsolve`) reuses every loaded factor panel across all
//! RHS columns, which is where the batching server's throughput comes from.
//! This benchmark measures exactly that: for each problem size, the factors
//! are built once, then each batch width `w` is solved both as `w` looped
//! single-RHS `solve` calls and as one width-`w` `vsolve`, and both are
//! reported as solves/sec in `BENCH_solve.json`.
//!
//! Every `vsolve` panel is also checked bitwise against its looped columns —
//! the equivalence contract guarding the comparison (and the server) — and
//! each size row records a sampled residual so accuracy regressions show up
//! next to throughput ones.
//!
//! Usage:
//! ```text
//! H2_BENCH_SCALE=small cargo run --release -p h2_bench --bin bench_solve [out.json]
//! ```

use h2_bench::{build_kernel, build_points, build_tree, compression_name, h2_options, Scale};
use h2_factor::UlvFactors;
use h2_matrix::Matrix;
use std::fmt::Write as _;
use std::time::Instant;

const WIDTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Rows sampled by the residual estimator (exact residual when n <= probes).
const RESIDUAL_PROBES: usize = 1024;

/// Deterministic RHS column `j` for problem size `n` (no `rand` dependency:
/// the benchmark must produce the same panels on every host).
fn rhs_col(n: usize, j: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) * 0.618_033_988_749 + j as f64 * 0.414_213_562_373;
            (t - t.floor()) * 2.0 - 1.0
        })
        .collect()
}

/// Time `op` adaptively: one warm-up/calibration run, then three measurement
/// rounds of enough repetitions to fill ~`target_secs` each; returns the
/// fastest round's seconds per run.  Min-of-rounds is the standard
/// noise-robust estimator — scheduler preemptions and cache pollution only
/// ever add time, so the minimum is the closest observation of the true cost
/// (this benchmark shares its host with CI).
fn time_per_run(target_secs: f64, mut op: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    op();
    let once = t0.elapsed().as_secs_f64();
    let reps = ((target_secs / once.max(1e-9)).ceil() as usize).clamp(1, 200);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            op();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

struct WidthRow {
    width: usize,
    looped_solves_per_sec: f64,
    vsolve_solves_per_sec: f64,
    speedup: f64,
}

struct SizeRow {
    n: usize,
    factor_seconds: f64,
    residual: Option<f64>,
    rows: Vec<WidthRow>,
    speedup_at_8: f64,
    /// Best speedup over the batch widths >= 8 — the number a batching server
    /// actually realizes once its queue is deep enough to fill wide panels.
    speedup_w8_best: f64,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn assert_panel_matches_loop(n: usize, panel: &Matrix, singles: &[Vec<f64>]) {
    for (j, single) in singles.iter().enumerate() {
        for i in 0..n {
            assert!(
                panel.get(i, j).to_bits() == single[i].to_bits(),
                "vsolve differs from looped solve at n={n}, column {j}, entry {i} — \
                 the equivalence contract is broken and the comparison is invalid"
            );
        }
    }
}

fn bench_size(
    n: usize,
    leaf: usize,
    tol: f64,
    target_secs: f64,
) -> h2_matrix::SolverResult<SizeRow> {
    let points = build_points(h2_bench::Workload::LaplaceCube, n, 20 + n as u64);
    let n = points.len();
    let kernel = build_kernel(h2_bench::Workload::LaplaceCube);
    let tree = build_tree(&points, leaf);
    let opts = h2_options(tol);

    let t0 = Instant::now();
    let factors: UlvFactors = h2_factor::h2_ulv_nodep(kernel.as_ref(), &tree, &opts)?;
    let factor_seconds = t0.elapsed().as_secs_f64();

    let max_width = *WIDTHS.last().unwrap_or(&1);
    let cols: Vec<Vec<f64>> = (0..max_width).map(|j| rhs_col(n, j)).collect();

    let mut rows = Vec::new();
    for &w in &WIDTHS {
        let panel = Matrix::from_columns(&cols[..w]);

        // Looped single-RHS baseline: w independent solves.
        let looped = time_per_run(target_secs, || {
            for col in &cols[..w] {
                let x = factors.solve(col).expect("bench solve");
                std::hint::black_box(x);
            }
        });
        // Blocked panel solve: one width-w sweep.
        let vsolve = time_per_run(target_secs, || {
            let x = factors.vsolve(&panel).expect("bench vsolve");
            std::hint::black_box(x);
        });

        // The comparison is only meaningful if both paths compute the same
        // answer — check it bitwise once per width.
        let x_panel = factors.vsolve(&panel)?;
        let x_singles: Vec<Vec<f64>> = cols[..w]
            .iter()
            .map(|c| factors.solve(c))
            .collect::<Result<_, _>>()?;
        assert_panel_matches_loop(n, &x_panel, &x_singles);

        rows.push(WidthRow {
            width: w,
            looped_solves_per_sec: w as f64 / looped,
            vsolve_solves_per_sec: w as f64 / vsolve,
            speedup: looped / vsolve,
        });
    }

    // Accuracy marker for the row: sampled residual of a refined solve, the
    // way the configuration prescribes (outside every timed region).
    let b = rhs_col(n, 0);
    let x = factors.solve_refined(kernel.as_ref(), &b, factors.default_refine_steps())?;
    let residual = factors.residual_sampled(kernel.as_ref(), &b, &x, RESIDUAL_PROBES, 7)?;

    let speedup_at_8 = rows
        .iter()
        .find(|r| r.width == 8)
        .map(|r| r.speedup)
        .unwrap_or(f64::NAN);
    let speedup_w8_best = rows
        .iter()
        .filter(|r| r.width >= 8)
        .map(|r| r.speedup)
        .fold(f64::NAN, f64::max);
    Ok(SizeRow {
        n,
        factor_seconds,
        residual: residual.is_finite().then_some(residual),
        rows,
        speedup_at_8,
        speedup_w8_best,
    })
}

fn main() -> h2_matrix::SolverResult<()> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_solve.json".to_string());
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match std::env::var("H2_BENCH_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => scale.sweep_sizes(),
    };
    let leaf = scale.leaf_size();
    let tol = 1e-6;
    // Smoke runs care about schema and sanity, not statistics.
    let target_secs = match scale {
        Scale::Smoke => 0.02,
        _ => 0.25,
    };
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let compression = compression_name(h2_options(tol).compression);
    println!(
        "bench_solve: cores={available}, sizes={sizes:?}, widths={WIDTHS:?}, leaf={leaf}, compression={compression}"
    );

    let mut sweep = Vec::new();
    for &n in &sizes {
        let row = bench_size(n, leaf, tol, target_secs)?;
        for r in &row.rows {
            println!(
                "n={}: width {:>2}: looped {:>9.1} solves/s, vsolve {:>9.1} solves/s, speedup {:.2}x",
                row.n, r.width, r.looped_solves_per_sec, r.vsolve_solves_per_sec, r.speedup
            );
        }
        sweep.push(row);
    }

    // ------------------------------------------------------------------- JSON
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"host\": {{\"available_cores\": {available}}},");
    let _ = writeln!(
        j,
        "  \"problem\": {{\"workload\": \"laplace-cube\", \"leaf\": {leaf}, \"tol\": {tol:e}, \"solver\": \"h2-ulv-nodep\", \"compression\": \"{compression}\", \"residual_estimator\": {{\"kind\": \"sampled-rows\", \"probes\": {RESIDUAL_PROBES}}}}},"
    );
    let widths: Vec<String> = WIDTHS.iter().map(|w| w.to_string()).collect();
    let _ = writeln!(j, "  \"widths\": [{}],", widths.join(", "));
    j.push_str("  \"sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let rows: Vec<String> = r
            .rows
            .iter()
            .map(|t| {
                format!(
                    "{{\"width\": {}, \"looped_solves_per_sec\": {}, \"vsolve_solves_per_sec\": {}, \"speedup\": {}}}",
                    t.width,
                    json_f(t.looped_solves_per_sec),
                    json_f(t.vsolve_solves_per_sec),
                    json_f(t.speedup)
                )
            })
            .collect();
        let residual = r
            .residual
            .map(|v| format!("{v:.3e}"))
            .unwrap_or_else(|| "null".to_string());
        let _ = write!(
            j,
            "    {{\"n\": {}, \"factor_seconds\": {}, \"residual\": {}, \"speedup_at_8\": {}, \"speedup_w8_best\": {}, \"bitwise_identical\": true, \"rows\": [{}]}}",
            r.n,
            json_f(r.factor_seconds),
            residual,
            json_f(r.speedup_at_8),
            json_f(r.speedup_w8_best),
            rows.join(", "),
        );
        j.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n");
    j.push_str("}\n");
    std::fs::write(&out_path, &j)
        .unwrap_or_else(|e| panic!("bench_solve: cannot write output JSON: {e}"));
    println!("bench_solve: wrote {out_path}");
    Ok(())
}
