//! Criterion micro-benchmarks of the dense kernels the solvers are built from
//! (the MKL substitutes: GEMM, LU, pivoted QR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h2_matrix::{lu_factor, matmul, pivoted_qr, Matrix};
use rand::SeedableRng;

fn bench_dense(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("gemm", n), &n, |bencher, _| {
            bencher.iter(|| matmul(&a, &b))
        });
        let mut spd = a.clone();
        for i in 0..n {
            let v = spd.get(i, i);
            spd.set(i, i, v + n as f64);
        }
        group.bench_with_input(BenchmarkId::new("lu", n), &n, |bencher, _| {
            bencher.iter(|| lu_factor(&spd).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pivoted_qr", n), &n, |bencher, _| {
            bencher.iter(|| pivoted_qr(&a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense);
criterion_main!(benches);
