//! Criterion micro-benchmarks of the low-rank compression kernels (ACA, truncated
//! pivoted QR, low-rank rounding) on realistic kernel blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use h2_geometry::{uniform_cube, Kernel, LaplaceKernel};
use h2_lowrank::{aca_block, add_lowrank, compress_block, round_lowrank, LowRank};
use h2_matrix::Matrix;
use rand::SeedableRng;

fn bench_compression(c: &mut Criterion) {
    let points = uniform_cube(2048, 3);
    let kernel = LaplaceKernel::default();
    let rows: Vec<usize> = (0..2048).filter(|&i| points[i].x < 0.25).collect();
    let cols: Vec<usize> = (0..2048).filter(|&i| points[i].x > 0.75).collect();
    let block = kernel.assemble(&points, &rows, &cols);

    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("aca", rows.len()), |b| {
        b.iter(|| aca_block(&kernel, &points, &rows, &cols, 1e-6, 64))
    });
    group.bench_function(BenchmarkId::new("pivoted_qr_compress", rows.len()), |b| {
        b.iter(|| compress_block(&block, 1e-6, None))
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let lr1 = LowRank::new(
        Matrix::random(256, 20, &mut rng),
        Matrix::random(256, 20, &mut rng),
    );
    let lr2 = LowRank::new(
        Matrix::random(256, 20, &mut rng),
        Matrix::random(256, 20, &mut rng),
    );
    group.bench_function("add_round_rank20", |b| {
        b.iter(|| round_lowrank(&add_lowrank(&lr1, &lr2), 1e-8, None))
    });
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
