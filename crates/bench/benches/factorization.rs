//! Criterion benchmark of the end-to-end factorizations at a fixed small size:
//! the paper's H²-ULV without dependencies vs the LORAPO-style BLR LU.

use criterion::{criterion_group, criterion_main, Criterion};
use h2_bench::{build_kernel, build_points, build_tree, h2_options, Workload};
use h2_factor::h2_ulv_nodep;
use h2_geometry::Admissibility;
use h2_hmatrix::BlrMatrix;
use h2_lorapo::{BlrLuFactors, BlrLuOptions};

fn bench_factorization(c: &mut Criterion) {
    let n = 1024;
    let points = build_points(Workload::LaplaceCube, n, 5);
    let kernel = build_kernel(Workload::LaplaceCube);
    let tree = build_tree(&points, 64);
    let blr_tree = build_tree(&points, 256);

    let mut group = c.benchmark_group("factorization_n1024");
    group.sample_size(10);
    group.bench_function("h2_ulv_nodep_tol1e-6", |b| {
        b.iter(|| h2_ulv_nodep(kernel.as_ref(), &tree, &h2_options(1e-6)).unwrap())
    });
    group.bench_function("lorapo_blr_lu_tol1e-6", |b| {
        b.iter(|| {
            let blr =
                BlrMatrix::build(kernel.as_ref(), &blr_tree, &Admissibility::weak(), 1e-6, 50);
            BlrLuFactors::factor_blr(
                blr,
                &BlrLuOptions {
                    tol: 1e-6,
                    max_rank: 50,
                    admissibility: Admissibility::weak(),
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
