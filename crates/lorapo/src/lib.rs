//! # h2-lorapo — the LORAPO-style BLR baseline
//!
//! The paper compares its dependency-free H²-ULV factorization against LORAPO
//! (Cao et al.), "an adaptive-rank BLR Cholesky factorization using the PaRSEC PTG
//! runtime system for achieving asynchronous parallelism".  This crate is our
//! from-scratch stand-in for that baseline:
//!
//! * a flat Block Low-Rank matrix (tiles from [`h2_hmatrix::BlrMatrix`], adaptive rank
//!   per tile via ACA),
//! * a right-looking tile LU factorization with low-rank aware TRSM and GEMM updates
//!   and rounding after every accumulation ([`blr_lu`]),
//! * the corresponding **task DAG with trailing sub-matrix dependencies**
//!   (GETRF → TRSM → GEMM chains), used by the scheduler simulator to reproduce the
//!   scaling and trace behaviour of a dataflow runtime with per-task overhead
//!   ([`dag`]).
//!
//! The factorization has the O(N²) complexity of BLR (Table I of the paper); its
//! per-tile ranks are smaller than the shared-basis ranks of the H² solver, which is
//! why it wins at small N and single-core runs (Figs. 9–10) and loses at scale
//! (Figs. 11, 16).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod blr_lu;
pub mod dag;

pub use blr_lu::{BlrLuFactors, BlrLuOptions};
pub use dag::build_blr_lu_dag;
