//! Right-looking tile BLR LU with adaptive ranks.
//!
//! The classic tile algorithm (the same dependency structure LORAPO hands to PaRSEC):
//!
//! ```text
//! for k in 0..nb:
//!     GETRF  A[k][k]
//!     TRSM   A[i][k] (i > k),  A[k][j] (j > k)
//!     GEMM   A[i][j] -= A[i][k] * A[k][j]   (i, j > k)   <- trailing sub-matrix updates
//! ```
//!
//! Off-diagonal tiles are low-rank; TRSM acts on one factor only, and GEMM updates are
//! accumulated and rounded back to the requested tolerance (the recompression LORAPO
//! performs).  Every operation on the trailing sub-matrix depends on the current panel
//! — exactly the dependency the paper's method eliminates.

use h2_geometry::{Admissibility, ClusterTree, Kernel};
use h2_hmatrix::blr::{BlrMatrix, BlrTile};
use h2_lowrank::{add_lowrank, round_lowrank, LowRank};
use h2_matrix::{
    lu_factor, lu_solve, matmul, matmul_batch_shared_a, matmul_nt, matmul_tn, Lu, Matrix,
};

/// Options of the BLR LU factorization.
#[derive(Debug, Clone, Copy)]
pub struct BlrLuOptions {
    /// Relative tolerance for tile compression and recompression.
    pub tol: f64,
    /// Maximum rank per tile (LORAPO's fixed maximum rank; the paper quotes 50).
    pub max_rank: usize,
    /// Admissibility used for the tiling (LORAPO compresses every off-diagonal tile).
    pub admissibility: Admissibility,
}

impl Default for BlrLuOptions {
    fn default() -> Self {
        BlrLuOptions {
            tol: 1e-8,
            max_rank: 64,
            admissibility: Admissibility::weak(),
        }
    }
}

/// The factored BLR matrix.
pub struct BlrLuFactors {
    /// Number of tile rows/columns.
    pub nb: usize,
    /// Tile sizes.
    pub tile_sizes: Vec<usize>,
    /// LU factors of the diagonal tiles.
    pub diag: Vec<Lu>,
    /// Strictly-lower tiles after TRSM (`A[i][k] U_kk^{-1}`), keyed `(i, k)` with `i > k`.
    pub lower: Vec<((usize, usize), BlrTile)>,
    /// Strictly-upper tiles after TRSM (`L_kk^{-1} P_kk A[k][j]`), keyed `(k, j)` with `j > k`.
    pub upper: Vec<((usize, usize), BlrTile)>,
    /// Factorization statistics.
    pub stats: BlrLuStats,
}

/// Statistics of a BLR LU run.
#[derive(Debug, Clone, Default)]
pub struct BlrLuStats {
    /// Seconds spent building the BLR matrix (compression).
    pub construction_seconds: f64,
    /// Seconds spent in the factorization.
    pub factorization_seconds: f64,
    /// Flops counted during the factorization.
    pub factorization_flops: u64,
    /// Largest tile rank seen after recompression.
    pub max_rank: usize,
    /// Storage of the factors in floating-point words.
    pub memory_words: usize,
}

impl BlrLuFactors {
    /// Build the BLR matrix from a kernel and factorize it.
    pub fn factor(kernel: &dyn Kernel, tree: &ClusterTree, opts: &BlrLuOptions) -> Self {
        let t0 = std::time::Instant::now();
        let blr = BlrMatrix::build(kernel, tree, &opts.admissibility, opts.tol, opts.max_rank);
        let construction_seconds = t0.elapsed().as_secs_f64();
        let mut factors = Self::factor_blr(blr, opts);
        factors.stats.construction_seconds = construction_seconds;
        factors
    }

    /// Factorize an already-assembled BLR matrix (consumed).
    pub fn factor_blr(mut a: BlrMatrix, opts: &BlrLuOptions) -> Self {
        let t0 = std::time::Instant::now();
        let f0 = h2_matrix::flop_count();
        let nb = a.nb;
        let tile_sizes = a.tile_sizes.clone();
        let mut diag: Vec<Option<Lu>> = (0..nb).map(|_| None).collect();
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        let mut max_rank = 0usize;

        for k in 0..nb {
            // GETRF on the diagonal tile (always dense).
            let dkk = match a.tile(k, k) {
                BlrTile::Dense(d) => d.clone(),
                BlrTile::LowRank(lr) => lr.to_dense(),
            };
            let lu = lu_factor(&dkk)
                .unwrap_or_else(|e| panic!("BLR LU: singular diagonal tile {k}: {e}"));
            // TRSM row panel: A[k][j] <- L^{-1} P A[k][j].
            for j in k + 1..nb {
                let t = a.tile(k, j).clone();
                let solved = match t {
                    BlrTile::Dense(d) => BlrTile::Dense(lu.forward_mat(&d)),
                    BlrTile::LowRank(lr) => {
                        BlrTile::LowRank(LowRank::new(lu.forward_mat(&lr.u), lr.v.clone()))
                    }
                };
                *a.tile_mut(k, j) = solved;
            }
            // TRSM column panel: A[i][k] <- A[i][k] U^{-1}.
            for i in k + 1..nb {
                let t = a.tile(i, k).clone();
                let solved = match t {
                    BlrTile::Dense(d) => BlrTile::Dense(lu.right_solve_upper(&d)),
                    BlrTile::LowRank(lr) => {
                        // (Uv V^T) Ukk^{-1}  ->  keep U, replace V by Ukk^{-T} V.
                        let vt_solved = lu.right_solve_upper(&lr.v.transpose());
                        BlrTile::LowRank(LowRank::new(lr.u.clone(), vt_solved.transpose()))
                    }
                };
                *a.tile_mut(i, k) = solved;
            }
            // GEMM trailing updates: A[i][j] -= A[i][k] A[k][j].  The products of
            // one row share the left factor A[i][k], so they stream through the
            // batched small-GEMM path (operand packed once per row).
            let akjs: Vec<BlrTile> = (k + 1..nb).map(|j| a.tile(k, j).clone()).collect();
            for i in k + 1..nb {
                let aik = a.tile(i, k).clone();
                let prods = row_tile_products(&aik, &akjs);
                for (j, prod) in (k + 1..nb).zip(prods) {
                    let updated = apply_update(a.tile(i, j), prod, opts.tol, opts.max_rank);
                    if let BlrTile::LowRank(lr) = &updated {
                        max_rank = max_rank.max(lr.rank());
                    }
                    *a.tile_mut(i, j) = updated;
                }
            }
            // Record the panels and the pivot.
            for j in k + 1..nb {
                upper.push(((k, j), a.tile(k, j).clone()));
            }
            for i in k + 1..nb {
                lower.push(((i, k), a.tile(i, k).clone()));
            }
            diag[k] = Some(lu);
        }

        let diag: Vec<Lu> = diag
            .into_iter()
            .map(|d| d.unwrap_or_else(|| unreachable!("pivot missing")))
            .collect();
        let mut stats = BlrLuStats {
            construction_seconds: 0.0,
            factorization_seconds: t0.elapsed().as_secs_f64(),
            factorization_flops: h2_matrix::flop_count() - f0,
            max_rank,
            memory_words: 0,
        };
        stats.memory_words = diag
            .iter()
            .map(|l| l.lu.rows() * l.lu.cols())
            .sum::<usize>()
            + lower
                .iter()
                .chain(upper.iter())
                .map(|(_, t)| t.storage())
                .sum::<usize>();
        BlrLuFactors {
            nb,
            tile_sizes,
            diag,
            lower,
            upper,
            stats,
        }
    }

    /// Offset of tile row/column `i`.
    fn offset(&self, i: usize) -> usize {
        self.tile_sizes[..i].iter().sum()
    }

    /// Total dimension.
    pub fn dim(&self) -> usize {
        self.tile_sizes.iter().sum()
    }

    /// Solve `A x = b` (tree ordering).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim());
        let nb = self.nb;
        // Forward: L y = b over tiles (unit-lower block structure with dense pivots).
        let mut y: Vec<Vec<f64>> = (0..nb)
            .map(|i| b[self.offset(i)..self.offset(i) + self.tile_sizes[i]].to_vec())
            .collect();
        for k in 0..nb {
            // y_k := L_kk^{-1} P_kk y_k  (diagonal pivot), then propagate below.
            y[k] = self.diag[k].forward(&y[k]);
            for ((i, kk), tile) in &self.lower {
                if *kk != k {
                    continue;
                }
                let mut update = vec![0.0; self.tile_sizes[*i]];
                tile_matvec(tile, &y[k], &mut update);
                for (a, u) in y[*i].iter_mut().zip(&update) {
                    *a -= u;
                }
            }
        }
        // Backward: U x = y over tiles.
        let mut x = y;
        for kk in (0..nb).rev() {
            for ((k, j), tile) in &self.upper {
                if *k != kk {
                    continue;
                }
                let mut update = vec![0.0; self.tile_sizes[*k]];
                tile_matvec(tile, &x[*j], &mut update);
                for (a, u) in x[*k].iter_mut().zip(&update) {
                    *a -= u;
                }
            }
            x[kk] = self.diag[kk].backward(&x[kk]);
        }
        x.into_iter().flatten().collect()
    }
}

/// `y += T * v` for a tile.
fn tile_matvec(t: &BlrTile, v: &[f64], y: &mut [f64]) {
    match t {
        BlrTile::Dense(d) => h2_matrix::gemv(1.0, d, false, v, 1.0, y),
        BlrTile::LowRank(lr) => lr.matvec(1.0, v, y),
    }
}

/// A pre-computed tile product `A[i][k] * A[k][j]`, low-rank whenever either
/// factor is.
enum TileProduct {
    Lr(LowRank),
    Dense(Matrix),
}

/// All products `aik * akj` of one trailing-update row.
///
/// The left factor is shared across the row, so the row's small GEMMs go through
/// [`matmul_batch_shared_a`]: the shared operand (`Vx^T` of a low-rank `aik`, or
/// a dense `aik` itself) is packed once and every `akj`'s factor streams through
/// the register microkernel — the LORAPO-side beneficiary of the batched
/// small-GEMM path.
fn row_tile_products(aik: &BlrTile, akjs: &[BlrTile]) -> Vec<TileProduct> {
    // Low-rank right factors contribute their U to the shared-A batch; dense
    // right factors are handled per-tile below.
    let lr_us: Vec<&Matrix> = akjs
        .iter()
        .filter_map(|t| match t {
            BlrTile::LowRank(y) => Some(&y.u),
            BlrTile::Dense(_) => None,
        })
        .collect();
    match aik {
        BlrTile::LowRank(x) => {
            // (Ux Vx^T)(Uy Vy^T) = [Ux (Vx^T Uy)] Vy^T: batch the cores, then
            // batch the Ux * core products (both share a left operand).
            let xvt = x.v.transpose();
            let cores = matmul_batch_shared_a(&xvt, &lr_us);
            let core_refs: Vec<&Matrix> = cores.iter().collect();
            let mut unews = matmul_batch_shared_a(&x.u, &core_refs).into_iter();
            akjs.iter()
                .map(|t| match t {
                    BlrTile::LowRank(y) => TileProduct::Lr(LowRank::new(
                        unews
                            .next()
                            .unwrap_or_else(|| unreachable!("one core per low-rank tile")),
                        y.v.clone(),
                    )),
                    // (Ux Vx^T) D = Ux (D^T Vx)^T.
                    BlrTile::Dense(d) => {
                        TileProduct::Lr(LowRank::new(x.u.clone(), matmul_tn(d, &x.v)))
                    }
                })
                .collect()
        }
        BlrTile::Dense(xd) => {
            // D (Uy Vy^T) = (D Uy) Vy^T with D packed once for the whole row.
            let mut dus = matmul_batch_shared_a(xd, &lr_us).into_iter();
            akjs.iter()
                .map(|t| match t {
                    BlrTile::LowRank(y) => TileProduct::Lr(LowRank::new(
                        dus.next()
                            .unwrap_or_else(|| unreachable!("one product per low-rank tile")),
                        y.v.clone(),
                    )),
                    BlrTile::Dense(yd) => TileProduct::Dense(matmul(xd, yd)),
                })
                .collect()
        }
    }
}

/// `target -= prod` with low-rank aware arithmetic and rounding.
fn apply_update(target: &BlrTile, prod: TileProduct, tol: f64, max_rank: usize) -> BlrTile {
    match target {
        BlrTile::Dense(d) => {
            let dense_prod = match prod {
                TileProduct::Lr(p) => matmul_nt(&p.u, &p.v),
                TileProduct::Dense(p) => p,
            };
            BlrTile::Dense(&d.clone() - &dense_prod)
        }
        BlrTile::LowRank(lr) => {
            let prod_lr = match prod {
                TileProduct::Lr(p) => p,
                // Dense-dense products only occur next to the diagonal; compress.
                TileProduct::Dense(p) => h2_lowrank::compress_block(&p, tol, Some(max_rank)),
            };
            let sum = add_lowrank(lr, &prod_lr.scaled(-1.0));
            BlrTile::LowRank(round_lowrank(&sum, tol, Some(max_rank)))
        }
    }
}

/// Convenience: factorize and solve, returning the solution and the factors.
pub fn blr_solve(
    kernel: &dyn Kernel,
    tree: &ClusterTree,
    opts: &BlrLuOptions,
    b: &[f64],
) -> (Vec<f64>, BlrLuFactors) {
    let f = BlrLuFactors::factor(kernel, tree, opts);
    let x = f.solve(b);
    (x, f)
}

/// Dense-LU reference on the same ordering, for validation in the tests.
pub fn dense_reference_solve(kernel: &dyn Kernel, tree: &ClusterTree, b: &[f64]) -> Vec<f64> {
    let order = tree.perm.clone();
    let a = kernel.assemble(&tree.points, &order, &order);
    let lu = lu_factor(&a).unwrap_or_else(|e| panic!("dense reference is singular: {e}"));
    lu_solve(&lu, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_geometry::{uniform_cube, LaplaceKernel, PartitionStrategy};
    use h2_matrix::rel_l2_error;

    fn setup(n: usize, leaf: usize) -> (ClusterTree, LaplaceKernel) {
        let pts = uniform_cube(n, 77);
        (
            ClusterTree::build(&pts, leaf, PartitionStrategy::KMeans, 0),
            LaplaceKernel::default(),
        )
    }

    #[test]
    fn blr_lu_solves_close_to_dense() {
        let n = 512;
        let (tree, kernel) = setup(n, 64);
        let b: Vec<f64> = (0..n).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
        let xref = dense_reference_solve(&kernel, &tree, &b);
        for &tol in &[1e-6, 1e-9] {
            let opts = BlrLuOptions {
                tol,
                max_rank: 64,
                ..BlrLuOptions::default()
            };
            let (x, f) = blr_solve(&kernel, &tree, &opts, &b);
            let err = rel_l2_error(&x, &xref);
            assert!(err < tol * 1e4, "tol {tol}: error {err}");
            assert!(f.stats.max_rank <= 64);
            assert!(f.stats.factorization_flops > 0);
        }
    }

    #[test]
    fn tighter_tolerance_is_more_accurate() {
        let n = 384;
        let (tree, kernel) = setup(n, 64);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
        let xref = dense_reference_solve(&kernel, &tree, &b);
        let loose = blr_solve(
            &kernel,
            &tree,
            &BlrLuOptions {
                tol: 1e-4,
                ..BlrLuOptions::default()
            },
            &b,
        )
        .0;
        let tight = blr_solve(
            &kernel,
            &tree,
            &BlrLuOptions {
                tol: 1e-10,
                ..BlrLuOptions::default()
            },
            &b,
        )
        .0;
        assert!(rel_l2_error(&tight, &xref) < rel_l2_error(&loose, &xref));
    }

    #[test]
    fn factor_storage_is_compressed() {
        // Realistic BLR setting: tiles much larger than the admissible ranks
        // (LORAPO's configuration in the paper uses 1024-point tiles with rank <= 50).
        let n = 512;
        let (tree, kernel) = setup(n, 128);
        let f = BlrLuFactors::factor(
            &kernel,
            &tree,
            &BlrLuOptions {
                tol: 1e-5,
                max_rank: 40,
                ..BlrLuOptions::default()
            },
        );
        assert!(f.stats.memory_words > 0);
        assert!(
            f.stats.memory_words < n * n,
            "factors should not be fully dense"
        );
        assert_eq!(f.dim(), n);
        assert_eq!(f.diag.len(), f.nb);
    }

    #[test]
    fn single_tile_problem_reduces_to_dense_lu() {
        let (tree, kernel) = setup(60, 64);
        let b: Vec<f64> = (0..60).map(|i| i as f64 / 60.0).collect();
        let (x, f) = blr_solve(&kernel, &tree, &BlrLuOptions::default(), &b);
        assert_eq!(f.nb, 1);
        let xref = dense_reference_solve(&kernel, &tree, &b);
        assert!(rel_l2_error(&x, &xref) < 1e-10);
    }
}
