//! The BLR LU task DAG (GETRF → TRSM → GEMM with trailing dependencies).
//!
//! This is the graph a PaRSEC-style runtime executes for LORAPO.  The scheduler
//! simulator replays it on `P` virtual workers with a per-task overhead, reproducing
//! the behaviour visible in the paper's trace (Fig. 13): tiny tasks drowned in runtime
//! overhead and a critical path that serializes the panels.

use h2_matrix::flops::cost;
use h2_runtime::{TaskGraph, TaskId, TaskKind};

/// Build the task DAG of a right-looking tile BLR LU.
///
/// * `nb` — number of tile rows/columns,
/// * `tile_size` — points per tile (tiles are treated as uniform for the cost model),
/// * `rank` — representative low-rank tile rank (LORAPO's adaptive ranks are bounded
///   by its maximum rank; the paper quotes a maximum of 50 at the leaf).
pub fn build_blr_lu_dag(nb: usize, tile_size: usize, rank: usize) -> TaskGraph {
    let m = tile_size;
    let r = rank.min(m);
    let mut g = TaskGraph::new();
    // task ids of the last writer of each tile (i, j).
    let mut last_writer: Vec<Option<TaskId>> = vec![None; nb * nb];
    let idx = |i: usize, j: usize| i * nb + j;

    for k in 0..nb {
        // GETRF(k, k): depends on the last update of the diagonal tile.
        let deps: Vec<TaskId> = last_writer[idx(k, k)].into_iter().collect();
        let getrf = g.add_task(TaskKind::Factor, cost::getrf(m) as f64, &deps);
        last_writer[idx(k, k)] = Some(getrf);

        // TRSM panels.
        let mut trsm_row = vec![None; nb];
        let mut trsm_col = vec![None; nb];
        for j in k + 1..nb {
            let mut deps: Vec<TaskId> = vec![getrf];
            deps.extend(last_writer[idx(k, j)]);
            // Low-rank TRSM touches only one factor: triangular solve on an m x r block.
            let t = g.add_task(TaskKind::Solve, cost::trsm(m, r) as f64, &deps);
            last_writer[idx(k, j)] = Some(t);
            trsm_row[j] = Some(t);
        }
        for i in k + 1..nb {
            let mut deps: Vec<TaskId> = vec![getrf];
            deps.extend(last_writer[idx(i, k)]);
            let t = g.add_task(TaskKind::Solve, cost::trsm(m, r) as f64, &deps);
            last_writer[idx(i, k)] = Some(t);
            trsm_col[i] = Some(t);
        }
        // GEMM trailing updates + recompression.
        for i in k + 1..nb {
            for j in k + 1..nb {
                let mut deps: Vec<TaskId> = Vec::with_capacity(3);
                deps.push(trsm_col[i].unwrap_or_else(|| unreachable!("column TRSM exists")));
                deps.push(trsm_row[j].unwrap_or_else(|| unreachable!("row TRSM exists")));
                deps.extend(last_writer[idx(i, j)]);
                // Low-rank GEMM: a few m x r products plus an O((2r)^2 m) rounding.
                let flops = 3 * cost::gemm(m, r, r) + cost::geqrf(m, 2 * r);
                let t = g.add_task(TaskKind::Update, flops as f64, &deps);
                last_writer[idx(i, j)] = Some(t);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2_runtime::{simulate_schedule, SimConfig};

    #[test]
    fn dag_has_expected_task_count_and_dependencies() {
        let nb = 6;
        let g = build_blr_lu_dag(nb, 256, 32);
        // nb GETRF + sum_k 2(nb-1-k) TRSM + sum_k (nb-1-k)^2 GEMM.
        let trsm: usize = (0..nb).map(|k| 2 * (nb - 1 - k)).sum();
        let gemm: usize = (0..nb).map(|k| (nb - 1 - k) * (nb - 1 - k)).sum();
        assert_eq!(g.len(), nb + trsm + gemm);
        assert!(g.validate());
        // Only the first GETRF is initially ready: everything else waits on it.
        assert_eq!(g.num_roots(), 1);
    }

    #[test]
    fn critical_path_limits_scaling_unlike_an_independent_graph() {
        let g = build_blr_lu_dag(8, 512, 48);
        let cfg1 = SimConfig {
            workers: 1,
            flops_per_second: 1e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let cfg64 = SimConfig {
            workers: 64,
            ..cfg1
        };
        let t1 = simulate_schedule(&g, &cfg1).makespan;
        let t64 = simulate_schedule(&g, &cfg64).makespan;
        let speedup = t1 / t64;
        assert!(speedup > 1.5, "some parallelism exists (speedup {speedup})");
        assert!(
            speedup < 30.0,
            "trailing dependencies must cap the speedup well below 64 (got {speedup})"
        );
        // The critical path lower-bounds the 64-worker makespan (up to the simulator's
        // nanosecond time quantization).
        assert!(t64 * 1e9 >= g.critical_path() * 0.999);
    }

    #[test]
    fn per_task_overhead_degrades_small_tile_runs_most() {
        let small_tiles = build_blr_lu_dag(16, 128, 16);
        let big_tiles = build_blr_lu_dag(4, 512, 16);
        let base = SimConfig {
            workers: 8,
            flops_per_second: 1e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let with_overhead = SimConfig {
            per_task_overhead: 2e-4,
            ..base
        };
        let slowdown_small = simulate_schedule(&small_tiles, &with_overhead).makespan
            / simulate_schedule(&small_tiles, &base).makespan;
        let slowdown_big = simulate_schedule(&big_tiles, &with_overhead).makespan
            / simulate_schedule(&big_tiles, &base).makespan;
        assert!(
            slowdown_small > slowdown_big,
            "overhead must hurt the many-small-task graph more ({slowdown_small} vs {slowdown_big})"
        );
    }
}
