//! Live task graph: dynamic submission with per-edge dependency release.
//!
//! [`DagExecutor`](crate::pool::DagExecutor) runs a *static* [`TaskGraph`]: the
//! whole graph must exist before execution starts, and `execute` is a barrier.
//! The fused construction ⇄ factorization pipeline needs more: a running task
//! must be able to spawn successors into the graph (the root factorization is
//! submitted by the final merge task, not by the driver), and a dependent must
//! be released the instant its *own* inputs exist — not when a phase or level
//! completes.
//!
//! [`live_scope`] provides that in the style of `std::thread::scope`:
//!
//! ```ignore
//! let pool = ThreadPool::new(4);
//! let result = live_scope(&pool, |scope| {
//!     let a = scope.submit(TaskKind::Compress, 1.0, &[], |_| { /* ... */ });
//!     scope.submit(TaskKind::Factor, 2.0, &[a], |scope| {
//!         // dynamic submission: successors enter the live graph mid-run
//!         scope.submit(TaskKind::Factor, 3.0, &[], |_| { /* ... */ });
//!     });
//! })?;
//! ```
//!
//! Guarantees:
//!
//! * **Per-edge release** — a task becomes ready the moment its last
//!   dependency completes; the releasing worker pushes ready dependents onto
//!   its own LIFO deque (highest priority last, so it runs next), exactly like
//!   the static executor.
//! * **Sound termination** — a task's dynamic submissions increment the pool's
//!   outstanding-task count *before* the submitting task itself finishes, so
//!   waiting on pool idleness can never miss work.  [`live_scope`] blocks until
//!   every task has drained before returning — even when the builder closure
//!   panics — which is what makes lending `'env` borrows to task closures
//!   sound.
//! * **Panic containment** — the first panicking task is recorded as a typed
//!   [`TaskPanic`], the graph is cancelled (queued tasks drain as counted
//!   no-ops, dependents of unfinished tasks are never released), and the pool
//!   remains reusable.
//!
//! Determinism: the scope does not impose an execution order beyond the
//! dependency edges, so — exactly as with the static executor — callers must
//! make every task write its own private output slot and collect results in a
//! fixed order.  Under that discipline results are bitwise identical at every
//! thread count.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dag::{TaskId, TaskKind};
use crate::pool::{panic_message, PoolShared, TaskPanic, ThreadPool};

/// Boxed task body.  The argument is a scope handle so a running task can
/// submit successors into the live graph.
type LiveJob = Box<dyn FnOnce(&LiveScope<'static>) + Send + 'static>;

/// Lifecycle of a node in the live graph.
enum NodeState {
    /// Waiting on `remaining` unmet dependencies; the body is parked here.
    Waiting { job: LiveJob, remaining: usize },
    /// Pushed to the pool (queued or running); the body travels with the job.
    Queued,
    /// Finished: ran to completion, drained cancelled, or panicked.
    Done,
}

struct LiveNode {
    state: NodeState,
    /// Tasks whose unmet-dependency count this node's completion decrements.
    dependents: Vec<TaskId>,
    /// Scheduling priority (higher runs first among ready tasks).
    priority: f64,
    #[allow(dead_code)]
    kind: TaskKind,
}

/// Bookkeeping shared by every handle to one live graph.
struct LiveShared {
    /// Node states plus reverse edges.  One lock for the whole graph — it is
    /// held only for bookkeeping (state flips, edge release), never while a
    /// task body runs, so contention is bounded by release traffic.
    nodes: Mutex<Vec<LiveNode>>,
    /// Set on the first panic: queued tasks drain as counted no-ops and
    /// dependents are never released.
    cancelled: AtomicBool,
    /// First task panic, reported by [`live_scope`] as a typed error.
    failure: Mutex<Option<TaskPanic>>,
    /// Tasks that ran to completion (excluding cancelled drains) — test aid.
    completed: AtomicUsize,
}

/// Handle through which tasks are submitted into a live graph.
///
/// `'env` is the borrow scope of the data task closures may capture;
/// [`live_scope`] guarantees every task finishes before `'env` ends.
pub struct LiveScope<'env> {
    shared: Arc<LiveShared>,
    pool: Arc<PoolShared>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> LiveScope<'env> {
    fn handle(shared: &Arc<LiveShared>, pool: &Arc<PoolShared>) -> LiveScope<'static> {
        LiveScope {
            shared: Arc::clone(shared),
            pool: Arc::clone(pool),
            _env: PhantomData,
        }
    }

    /// Submit a task with explicit dependencies (handles returned by earlier
    /// `submit` calls — forward references are impossible by construction, so
    /// the live graph is acyclic).  Dependencies that already completed count
    /// as satisfied.  Returns a handle usable as a dependency of later tasks.
    ///
    /// Callable from the builder closure *and* from inside a running task (the
    /// task body receives a scope handle) — that is the dynamic-submission
    /// half of the fused-pipeline contract.
    ///
    /// # Panics
    /// Panics on a dependency handle that this graph never issued.
    pub fn submit<F>(&self, kind: TaskKind, priority: f64, deps: &[TaskId], body: F) -> TaskId
    where
        F: FnOnce(&LiveScope<'env>) + Send + 'env,
    {
        let boxed: Box<dyn FnOnce(&LiveScope<'env>) + Send + 'env> = Box::new(body);
        // SAFETY: `live_scope` does not return until every submitted task has
        // drained (it waits for pool idleness even when the builder panics),
        // so the `'env` borrows captured by the closure strictly outlive its
        // execution.  Same contract as `DagExecutor::execute_scoped`.
        let boxed: LiveJob = unsafe {
            std::mem::transmute::<Box<dyn FnOnce(&LiveScope<'env>) + Send + 'env>, LiveJob>(boxed)
        };

        let mut nodes = self.shared.nodes.lock();
        let id = TaskId(nodes.len());
        if self.shared.cancelled.load(Ordering::Acquire) {
            // The graph is being torn down; register the node as already done
            // so late submissions from still-running tasks drop cleanly and
            // later dependency references on them stay valid.
            nodes.push(LiveNode {
                state: NodeState::Done,
                dependents: Vec::new(),
                priority,
                kind,
            });
            return id;
        }
        let mut remaining = 0usize;
        for dep in deps {
            assert!(dep.0 < id.0, "dependency on unknown task {dep:?}");
            if !matches!(nodes[dep.0].state, NodeState::Done) {
                nodes[dep.0].dependents.push(id);
                remaining += 1;
            }
        }
        if remaining == 0 {
            nodes.push(LiveNode {
                state: NodeState::Queued,
                dependents: Vec::new(),
                priority,
                kind,
            });
            drop(nodes);
            spawn_live(&self.shared, &self.pool, id, priority, boxed);
        } else {
            nodes.push(LiveNode {
                state: NodeState::Waiting {
                    job: boxed,
                    remaining,
                },
                dependents: Vec::new(),
                priority,
                kind,
            });
        }
        id
    }

    /// Number of tasks that ran to completion so far (cancelled drains and
    /// panicked tasks excluded).
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Relaxed)
    }
}

/// Push one ready task to the pool.  The wrapper replicates the static
/// executor's containment: a panicking body is caught here, recorded once,
/// and cancels the rest of the graph; completion releases dependents per edge
/// and pushes the newly ready ones, most critical last (LIFO deque → runs
/// first).
fn spawn_live(
    shared: &Arc<LiveShared>,
    pool: &Arc<PoolShared>,
    id: TaskId,
    priority: f64,
    job: LiveJob,
) {
    let shared_for_job = Arc::clone(shared);
    let pool_for_job = Arc::clone(pool);
    pool.push(
        priority,
        Box::new(move || {
            if shared_for_job.cancelled.load(Ordering::Acquire) {
                // Drain without running; the pool still counts this job, so
                // idleness-based termination keeps its guarantee.
                let mut nodes = shared_for_job.nodes.lock();
                nodes[id.0].state = NodeState::Done;
                return;
            }
            let scope = LiveScope::handle(&shared_for_job, &pool_for_job);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(&scope))) {
                let mut f = shared_for_job.failure.lock();
                if f.is_none() {
                    *f = Some(TaskPanic {
                        task: id,
                        message: panic_message(payload.as_ref()),
                    });
                }
                drop(f);
                shared_for_job.cancelled.store(true, Ordering::Release);
                // Dependents of a panicked task are never released.
                let mut nodes = shared_for_job.nodes.lock();
                nodes[id.0].state = NodeState::Done;
                return;
            }
            shared_for_job.completed.fetch_add(1, Ordering::Relaxed);
            // Per-edge release: decrement every dependent's unmet count and
            // collect the ones this completion made ready.
            let mut ready: Vec<(TaskId, f64, LiveJob)> = Vec::new();
            {
                let mut nodes = shared_for_job.nodes.lock();
                nodes[id.0].state = NodeState::Done;
                let dependents = std::mem::take(&mut nodes[id.0].dependents);
                for dep in dependents {
                    let node = &mut nodes[dep.0];
                    let released = match &mut node.state {
                        NodeState::Waiting { remaining, .. } => {
                            *remaining -= 1;
                            *remaining == 0
                        }
                        _ => false,
                    };
                    if released {
                        let prev = std::mem::replace(&mut node.state, NodeState::Queued);
                        if let NodeState::Waiting { job, .. } = prev {
                            ready.push((dep, node.priority, job));
                        }
                    }
                }
            }
            // Push lowest priority first: the worker's deque is LIFO, so the
            // most critical dependent is executed next.
            ready.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (dep, prio, job) in ready {
                spawn_live(&shared_for_job, &pool_for_job, dep, prio, job);
            }
        }),
    );
}

/// Run a live task graph to completion on `pool`.
///
/// `build` receives the scope handle and submits the initial tasks; tasks may
/// submit further tasks while running.  The call returns only after every
/// task has drained — also when `build` itself panics (the graph is cancelled,
/// drained, and the panic resumed), which is what makes `'env` borrows inside
/// task closures sound.
///
/// # Errors
/// The first task panic of the run, as a typed [`TaskPanic`]; the pool remains
/// reusable.
pub fn live_scope<'env, R>(
    pool: &ThreadPool,
    build: impl FnOnce(&LiveScope<'env>) -> R,
) -> Result<R, TaskPanic> {
    let shared = Arc::new(LiveShared {
        nodes: Mutex::new(Vec::new()),
        cancelled: AtomicBool::new(false),
        failure: Mutex::new(None),
        completed: AtomicUsize::new(0),
    });
    let scope = LiveScope::<'env> {
        shared: Arc::clone(&shared),
        pool: Arc::clone(pool.shared_handle()),
        _env: PhantomData,
    };
    let built = catch_unwind(AssertUnwindSafe(|| build(&scope)));
    if built.is_err() {
        // The builder died mid-registration: cancel so queued tasks drain
        // fast, then wait for the drain before unwinding — task closures may
        // borrow locals of the (unwinding) caller frame.
        shared.cancelled.store(true, Ordering::Release);
    }
    // Live task wrappers catch their own panics, so this cannot re-throw for
    // them; only plain `submit` jobs sharing the pool could.
    let pool_panic = pool.try_wait_idle();
    match built {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(result) => {
            if let Err(p) = pool_panic {
                std::panic::resume_unwind(p);
            }
            if let Some(failure) = shared.failure.lock().take() {
                return Err(failure);
            }
            Ok(result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn per_edge_release_runs_everything_once() {
        let pool = ThreadPool::new(4);
        let count = AtomicU64::new(0);
        let order = Mutex::new(Vec::new());
        let result = live_scope(&pool, |scope| {
            let a = scope.submit(TaskKind::Other, 1.0, &[], |_| {
                order.lock().push("a");
            });
            let b = scope.submit(TaskKind::Other, 1.0, &[a], |_| {
                order.lock().push("b");
            });
            for _ in 0..16 {
                scope.submit(TaskKind::Other, 0.5, &[a, b], |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(result.is_ok());
        assert_eq!(count.load(Ordering::Relaxed), 16);
        let order = order.lock();
        assert_eq!(&*order, &["a", "b"], "edges must be honored");
    }

    #[test]
    fn dynamic_submission_from_inside_a_task_is_awaited() {
        let pool = ThreadPool::new(2);
        let hits = AtomicU64::new(0);
        let result = live_scope(&pool, |scope| {
            scope.submit(TaskKind::Factor, 1.0, &[], |scope| {
                // Spawn a chain of successors from inside the running task;
                // the scope must not terminate before they all finish.
                let first = scope.submit(TaskKind::Factor, 2.0, &[], |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                scope.submit(TaskKind::Factor, 2.0, &[first], |scope| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    scope.submit(TaskKind::Factor, 3.0, &[], |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert!(result.is_ok());
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn already_done_dependencies_count_as_satisfied() {
        let pool = ThreadPool::new(1);
        let hits = AtomicU64::new(0);
        let result = live_scope(&pool, |scope| {
            let a = scope.submit(TaskKind::Other, 1.0, &[], |_| {});
            // With one worker, give `a` time to finish before the dependent
            // is submitted — the dep must count as satisfied, not hang.
            std::thread::sleep(std::time::Duration::from_millis(20));
            scope.submit(TaskKind::Other, 1.0, &[a], |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(result.is_ok());
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn task_panic_is_typed_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let ran_after = AtomicU64::new(0);
        let result = live_scope(&pool, |scope| {
            let boom = scope.submit(TaskKind::Factor, 1.0, &[], |_| {
                panic!("live graph boom");
            });
            // Dependent of the panicked task: must never run.
            scope.submit(TaskKind::Factor, 1.0, &[boom], |_| {
                ran_after.fetch_add(1, Ordering::Relaxed);
            });
        });
        let err = result.expect_err("panic must surface");
        assert!(err.message.contains("live graph boom"), "{}", err.message);
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
        // The pool is reusable after a cancelled graph.
        let ok = live_scope(&pool, |scope| {
            scope.submit(TaskKind::Other, 1.0, &[], |_| {});
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn builder_panic_drains_before_unwinding() {
        let pool = ThreadPool::new(2);
        let local = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<(), TaskPanic> = live_scope(&pool, |scope| {
                for _ in 0..8 {
                    scope.submit(TaskKind::Other, 1.0, &[], |_| {
                        local.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("builder boom");
            });
        }));
        assert!(caught.is_err());
        // After live_scope unwound, no task may still be touching `local`:
        // the pool is idle, so this read races with nothing.
        let _ = local.load(Ordering::Relaxed);
        let ok = live_scope(&pool, |scope| {
            scope.submit(TaskKind::Other, 1.0, &[], |_| {});
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn diamond_results_are_deterministic_across_thread_counts() {
        // A fan-out/fan-in graph where every task writes one private slot;
        // collected results must be identical at every pool size.
        fn run(threads: usize) -> Vec<u64> {
            let pool = ThreadPool::new(threads);
            let n = 32;
            let slots: Vec<std::sync::OnceLock<u64>> =
                (0..n).map(|_| std::sync::OnceLock::new()).collect();
            live_scope(&pool, |scope| {
                let src = scope.submit(TaskKind::Other, 1.0, &[], |_| {});
                let mids: Vec<TaskId> = (0..n)
                    .map(|i| {
                        let slot = &slots[i];
                        scope.submit(TaskKind::Other, 1.0, &[src], move |_| {
                            let v = (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
                            let _ = slot.set(v ^ (v >> 31));
                        })
                    })
                    .collect();
                scope.submit(TaskKind::Other, 2.0, &mids, |_| {});
            })
            .expect("clean run");
            slots.iter().map(|s| *s.get().expect("slot set")).collect()
        }
        let a = run(1);
        let b = run(2);
        let c = run(4);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
