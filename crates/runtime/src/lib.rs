//! # h2-runtime — task DAG runtime and scheduler simulator
//!
//! The paper contrasts two execution models:
//!
//! * the LORAPO baseline expresses its BLR factorization as a task DAG with trailing
//!   sub-matrix dependencies and relies on the PaRSEC runtime to extract parallelism —
//!   paying a per-task runtime overhead that Fig. 13 of the paper visualizes;
//! * the proposed H²-ULV factorization has **no dependencies inside a level**, so a
//!   plain parallel-for is enough and "runtime systems such as StarPU and PaRSEC …
//!   are unnecessary".
//!
//! This crate provides both sides of that comparison as reusable substrates:
//!
//! * [`dag`] — an explicit task-graph representation with dependency tracking,
//!   critical-path analysis and category labels,
//! * [`pool`] — a work-stealing thread pool (per-worker deques, LIFO local pop /
//!   FIFO steal, priority injector) plus a DAG executor that runs real closures
//!   with dependency tracking and critical-path-first ordering (our PaRSEC
//!   stand-in); the H²-ULV factorization drives its per-level basis construction
//!   and elimination through it,
//! * [`sim`] — a discrete-event scheduler simulator that replays a task DAG on `P`
//!   virtual workers with a configurable per-task runtime overhead; this is what the
//!   strong-scaling figures use, because the CI machine has a single physical core
//!   (see DESIGN.md §3),
//! * [`trace`] — execution traces (worker timelines, useful vs. overhead time) that
//!   regenerate the Fig. 13 analysis,
//! * [`stats`] — makespan / critical path / efficiency summaries.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dag;
pub mod live;
pub mod pool;
pub mod sim;
pub mod stats;
pub mod trace;

pub use dag::{TaskGraph, TaskId, TaskKind};
pub use live::{live_scope, LiveScope};
pub use pool::{resolve_num_threads, DagExecutor, TaskPanic, ThreadPool};
pub use sim::{simulate_schedule, SimConfig, SimResult};
pub use stats::{ScheduleStats, WorkStealCounters};
pub use trace::{Trace, TraceEvent};
