//! Task graphs with dependency tracking.
//!
//! A [`TaskGraph`] is a DAG of tasks, each with a cost (in abstract work units — the
//! solver uses flop counts from `h2-matrix::flops::cost`) and a [`TaskKind`] category.
//! The graph is built once by the factorization drivers and then either executed for
//! real ([`crate::pool::DagExecutor`]) or replayed on virtual workers
//! ([`crate::sim::simulate_schedule`]).

/// Identifier of a task inside a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Category of a task — used for trace coloring and the Fig. 13 style overhead
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// LU / Cholesky factorization of a diagonal block (GETRF/POTRF).
    Factor,
    /// Triangular solve (TRSM).
    Solve,
    /// Schur-complement style matrix multiply (GEMM).
    Update,
    /// Low-rank compression / recompression.
    Compress,
    /// Basis construction (QR of concatenated blocks).
    Basis,
    /// Inter-process communication (used by the distributed model).
    Comm,
    /// Anything else.
    Other,
}

impl TaskKind {
    /// Short label used in trace exports.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Factor => "factor",
            TaskKind::Solve => "solve",
            TaskKind::Update => "update",
            TaskKind::Compress => "compress",
            TaskKind::Basis => "basis",
            TaskKind::Comm => "comm",
            TaskKind::Other => "other",
        }
    }
}

/// A single task record.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// Task id (index into the graph).
    pub id: TaskId,
    /// Cost in abstract work units (flops for compute tasks, bytes for comm tasks).
    pub cost: f64,
    /// Category.
    pub kind: TaskKind,
    /// Tasks that must complete before this one starts.
    pub deps: Vec<TaskId>,
    /// Tasks that depend on this one (filled automatically).
    pub dependents: Vec<TaskId>,
}

/// A directed acyclic graph of tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
}

impl TaskGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new() }
    }

    /// Add a task with the given cost, kind and dependencies; returns its id.
    ///
    /// # Panics
    /// Panics if a dependency id does not exist yet (dependencies must be added
    /// before their dependents, which also guarantees acyclicity).
    pub fn add_task(&mut self, kind: TaskKind, cost: f64, deps: &[TaskId]) -> TaskId {
        let id = TaskId(self.nodes.len());
        for d in deps {
            assert!(d.0 < self.nodes.len(), "dependency {:?} does not exist", d);
        }
        self.nodes.push(TaskNode {
            id,
            cost,
            kind,
            deps: deps.to_vec(),
            dependents: Vec::new(),
        });
        for d in deps {
            self.nodes[d.0].dependents.push(id);
        }
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a task record.
    pub fn node(&self, id: TaskId) -> &TaskNode {
        &self.nodes[id.0]
    }

    /// Iterate over all tasks.
    pub fn iter(&self) -> impl Iterator<Item = &TaskNode> {
        self.nodes.iter()
    }

    /// Total work (sum of all task costs).
    pub fn total_work(&self) -> f64 {
        self.nodes.iter().map(|n| n.cost).sum()
    }

    /// Length of the critical path (the longest cost-weighted chain of dependencies).
    /// This bounds the achievable parallel speedup: `T_P >= max(T_1 / P, critical_path)`.
    pub fn critical_path(&self) -> f64 {
        // Nodes are already in topological order (dependencies precede dependents).
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut longest = 0.0f64;
        for n in &self.nodes {
            let ready = n.deps.iter().map(|d| finish[d.0]).fold(0.0, f64::max);
            finish[n.id.0] = ready + n.cost;
            longest = longest.max(finish[n.id.0]);
        }
        longest
    }

    /// Downward rank of every task: the length of the longest cost-weighted path
    /// from the task to any sink, **including** the task's own cost.  This is the
    /// classic HEFT/critical-path-first priority — executing high-rank tasks first
    /// keeps the critical path moving and bounds the makespan at
    /// `T_P <= T_1/P + critical_path` (Graham's bound with the greedy scheduler).
    pub fn downward_ranks(&self) -> Vec<f64> {
        let mut rank = vec![0.0f64; self.nodes.len()];
        // Nodes are in topological order, so a reverse sweep sees every dependent
        // before the tasks it depends on.
        for n in self.nodes.iter().rev() {
            let tail = n.dependents.iter().map(|d| rank[d.0]).fold(0.0, f64::max);
            rank[n.id.0] = n.cost + tail;
        }
        rank
    }

    /// Number of tasks with no dependencies (the initial parallelism).
    pub fn num_roots(&self) -> usize {
        self.nodes.iter().filter(|n| n.deps.is_empty()).count()
    }

    /// Work broken down per task kind.
    pub fn work_by_kind(&self) -> Vec<(TaskKind, f64)> {
        let kinds = [
            TaskKind::Factor,
            TaskKind::Solve,
            TaskKind::Update,
            TaskKind::Compress,
            TaskKind::Basis,
            TaskKind::Comm,
            TaskKind::Other,
        ];
        kinds
            .iter()
            .map(|&k| {
                (
                    k,
                    self.nodes
                        .iter()
                        .filter(|n| n.kind == k)
                        .map(|n| n.cost)
                        .sum(),
                )
            })
            .filter(|(_, w)| *w > 0.0)
            .collect()
    }

    /// Verify the graph is a DAG with all edges pointing from earlier to later ids
    /// (the construction enforces this; the check exists for defensive testing).
    pub fn validate(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.deps.iter().all(|d| d.0 < n.id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_graph() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 10.0, &[]);
        let b = g.add_task(TaskKind::Solve, 5.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 5.0, &[a]);
        let d = g.add_task(TaskKind::Update, 2.0, &[b, c]);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.total_work(), 22.0);
        assert_eq!(g.num_roots(), 1);
        assert!(g.validate());
        assert_eq!(g.node(d).deps, vec![b, c]);
        assert_eq!(g.node(a).dependents, vec![b, c]);
        // Critical path: 10 + 5 + 2.
        assert_eq!(g.critical_path(), 17.0);
        let by_kind = g.work_by_kind();
        assert!(by_kind.contains(&(TaskKind::Solve, 10.0)));
    }

    #[test]
    fn independent_tasks_have_critical_path_of_max_cost() {
        let mut g = TaskGraph::new();
        for i in 0..10 {
            g.add_task(TaskKind::Other, i as f64 + 1.0, &[]);
        }
        assert_eq!(g.critical_path(), 10.0);
        assert_eq!(g.num_roots(), 10);
    }

    #[test]
    fn downward_ranks_equal_longest_path_to_sink() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 10.0, &[]);
        let b = g.add_task(TaskKind::Solve, 5.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let d = g.add_task(TaskKind::Update, 2.0, &[b, c]);
        let ranks = g.downward_ranks();
        assert_eq!(ranks[d.0], 2.0);
        assert_eq!(ranks[b.0], 7.0);
        assert_eq!(ranks[c.0], 3.0);
        // Root rank equals the critical path of the whole graph.
        assert_eq!(ranks[a.0], g.critical_path());
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(g.critical_path(), 0.0);
        assert_eq!(g.total_work(), 0.0);
        assert!(g.is_empty());
        assert!(g.validate());
    }

    #[test]
    #[should_panic]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(TaskKind::Other, 1.0, &[TaskId(5)]);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(TaskKind::Factor.label(), "factor");
        assert_eq!(TaskKind::Comm.label(), "comm");
    }
}
