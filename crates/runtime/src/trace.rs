//! Execution traces.
//!
//! Fig. 13 of the paper shows a PaRSEC trace of the LORAPO run where "the red tasks
//! are run time system overhead and the green tasks are useful computation".  The
//! [`Trace`] type records exactly that information — per-worker intervals labelled as
//! useful work (with a [`TaskKind`]) or runtime overhead — and computes the summary
//! fractions the benchmark binaries report, plus a CSV export of the full timeline.

use crate::dag::TaskKind;

/// One interval on one worker's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Worker (thread / virtual core) index.
    pub worker: usize,
    /// Start time (seconds, simulated or measured).
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Task category; `None` marks runtime overhead.
    pub kind: Option<TaskKind>,
    /// Task index in the originating graph (usize::MAX for overhead intervals).
    pub task: usize,
}

impl TraceEvent {
    /// Interval length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// True if this interval is runtime overhead rather than useful work.
    pub fn is_overhead(&self) -> bool {
        self.kind.is_none()
    }
}

/// A collection of trace events for a run on `workers` workers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Number of workers the trace spans.
    pub workers: usize,
    /// All recorded intervals.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Create an empty trace for the given worker count.
    pub fn new(workers: usize) -> Self {
        Trace {
            workers,
            events: Vec::new(),
        }
    }

    /// Record an interval.
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            ev.end >= ev.start,
            "trace interval must have non-negative length"
        );
        self.events.push(ev);
    }

    /// Total useful-work time summed over workers.
    pub fn useful_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| !e.is_overhead())
            .map(|e| e.duration())
            .sum()
    }

    /// Total runtime-overhead time summed over workers.
    pub fn overhead_time(&self) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_overhead())
            .map(|e| e.duration())
            .sum()
    }

    /// Overhead as a fraction of total busy time (the Fig. 13 headline number).
    pub fn overhead_fraction(&self) -> f64 {
        let useful = self.useful_time();
        let overhead = self.overhead_time();
        let total = useful + overhead;
        if total == 0.0 {
            0.0
        } else {
            overhead / total
        }
    }

    /// Makespan: the latest end time over all events (0 for an empty trace).
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Busy time of a single worker.
    pub fn worker_busy(&self, worker: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.worker == worker)
            .map(|e| e.duration())
            .sum()
    }

    /// Average worker utilization: busy time / (workers * makespan).
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span == 0.0 || self.workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.events.iter().map(|e| e.duration()).sum();
        busy / (span * self.workers as f64)
    }

    /// Per-kind busy time breakdown (overhead reported under the key `"overhead"`).
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        let mut acc: Vec<(&'static str, f64)> = Vec::new();
        let mut add = |label: &'static str, t: f64| {
            if let Some(e) = acc.iter_mut().find(|(l, _)| *l == label) {
                e.1 += t;
            } else {
                acc.push((label, t));
            }
        };
        for e in &self.events {
            match e.kind {
                Some(k) => add(k.label(), e.duration()),
                None => add("overhead", e.duration()),
            }
        }
        acc
    }

    /// Export the timeline as CSV (`worker,start,end,kind,task`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("worker,start,end,kind,task\n");
        for e in &self.events {
            let kind = e.kind.map(|k| k.label()).unwrap_or("overhead");
            s.push_str(&format!(
                "{},{:.9},{:.9},{},{}\n",
                e.worker, e.start, e.end, kind, e.task
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(worker: usize, start: f64, end: f64, kind: Option<TaskKind>) -> TraceEvent {
        TraceEvent {
            worker,
            start,
            end,
            kind,
            task: 0,
        }
    }

    #[test]
    fn aggregation_of_useful_and_overhead_time() {
        let mut t = Trace::new(2);
        t.push(ev(0, 0.0, 1.0, Some(TaskKind::Factor)));
        t.push(ev(0, 1.0, 1.5, None));
        t.push(ev(1, 0.0, 2.0, Some(TaskKind::Update)));
        assert_eq!(t.useful_time(), 3.0);
        assert_eq!(t.overhead_time(), 0.5);
        assert!((t.overhead_fraction() - 0.5 / 3.5).abs() < 1e-12);
        assert_eq!(t.makespan(), 2.0);
        assert_eq!(t.worker_busy(0), 1.5);
        assert!((t.utilization() - 3.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_and_csv() {
        let mut t = Trace::new(1);
        t.push(ev(0, 0.0, 1.0, Some(TaskKind::Factor)));
        t.push(ev(0, 1.0, 3.0, Some(TaskKind::Factor)));
        t.push(ev(0, 3.0, 3.5, None));
        let b = t.breakdown();
        assert!(b.contains(&("factor", 3.0)));
        assert!(b.contains(&("overhead", 0.5)));
        let csv = t.to_csv();
        assert!(csv.starts_with("worker,start,end,kind,task"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("overhead"));
    }

    #[test]
    fn empty_trace_is_well_defined() {
        let t = Trace::new(4);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.overhead_fraction(), 0.0);
        assert_eq!(t.utilization(), 0.0);
    }
}
