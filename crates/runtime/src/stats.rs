//! Summary statistics for schedules and scaling sweeps, plus the runtime's
//! work-stealing counters.

use crate::dag::TaskGraph;
use crate::sim::{simulate_schedule, SimConfig, SimResult};

/// Snapshot of a [`crate::pool::ThreadPool`]'s scheduling counters.
///
/// Every executed task is counted exactly once in [`executed`](Self::executed)
/// and exactly once in one of the three acquisition channels, so
/// `executed == local_pops + injector_pops + steals` always holds.  The steal
/// ratio is the load-imbalance signal the strong-scaling analysis watches: a
/// well-balanced DAG run keeps it low, a wide irregular graph drives it up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkStealCounters {
    /// Tasks executed by the pool's workers.
    pub executed: u64,
    /// Tasks a worker popped from its own deque (LIFO end).
    pub local_pops: u64,
    /// Tasks taken from the shared priority injector.
    pub injector_pops: u64,
    /// Tasks stolen from another worker's deque (FIFO end).
    pub steals: u64,
}

impl WorkStealCounters {
    /// Fraction of executed tasks that were stolen (0 when nothing ran).
    pub fn steal_ratio(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.steals as f64 / self.executed as f64
    }
}

/// Summary of a task graph's parallel structure and of a simulated schedule on a range
/// of worker counts — the raw material of the strong-scaling figures.
#[derive(Debug, Clone)]
pub struct ScheduleStats {
    /// Total work in the graph (work units).
    pub total_work: f64,
    /// Critical-path length (work units).
    pub critical_path: f64,
    /// Number of tasks.
    pub tasks: usize,
    /// Number of initially-ready tasks.
    pub roots: usize,
    /// `(workers, makespan_seconds, efficiency)` triples.
    pub scaling: Vec<(usize, f64, f64)>,
}

impl ScheduleStats {
    /// Analyse `graph` and simulate it for every worker count in `worker_counts`.
    pub fn analyze(graph: &TaskGraph, base: &SimConfig, worker_counts: &[usize]) -> Self {
        let mut scaling = Vec::with_capacity(worker_counts.len());
        for &w in worker_counts {
            let cfg = SimConfig {
                workers: w,
                ..*base
            };
            let res: SimResult = simulate_schedule(graph, &cfg);
            scaling.push((w, res.makespan, res.efficiency(w)));
        }
        ScheduleStats {
            total_work: graph.total_work(),
            critical_path: graph.critical_path(),
            tasks: graph.len(),
            roots: graph.num_roots(),
            scaling,
        }
    }

    /// Average available parallelism (`total_work / critical_path`).
    pub fn average_parallelism(&self) -> f64 {
        if self.critical_path == 0.0 {
            return 0.0;
        }
        self.total_work / self.critical_path
    }

    /// Speedup of the largest simulated worker count over one worker (if present).
    pub fn max_speedup(&self) -> f64 {
        let t1 = self
            .scaling
            .iter()
            .find(|(w, _, _)| *w == 1)
            .map(|(_, t, _)| *t);
        let tmax = self
            .scaling
            .iter()
            .max_by_key(|(w, _, _)| *w)
            .map(|(_, t, _)| *t);
        match (t1, tmax) {
            (Some(t1), Some(tp)) if tp > 0.0 => t1 / tp,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{TaskGraph, TaskKind};

    fn wide_graph(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(TaskKind::Update, 1.0, &[]);
        }
        g
    }

    #[test]
    fn analyze_reports_scaling_of_embarrassingly_parallel_graph() {
        let g = wide_graph(128);
        let cfg = SimConfig {
            workers: 1,
            flops_per_second: 1.0,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let stats = ScheduleStats::analyze(&g, &cfg, &[1, 2, 4, 8, 16]);
        assert_eq!(stats.tasks, 128);
        assert_eq!(stats.roots, 128);
        assert_eq!(stats.average_parallelism(), 128.0);
        assert!((stats.max_speedup() - 16.0).abs() < 1e-6);
        // Efficiency stays ~1 for a perfectly parallel graph.
        for &(_, _, eff) in &stats.scaling {
            assert!(eff > 0.99);
        }
    }

    #[test]
    fn serial_chain_has_unit_parallelism() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..10 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(TaskKind::Factor, 2.0, &deps));
        }
        let cfg = SimConfig {
            workers: 1,
            flops_per_second: 1.0,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let stats = ScheduleStats::analyze(&g, &cfg, &[1, 8]);
        assert!((stats.average_parallelism() - 1.0).abs() < 1e-12);
        assert!((stats.max_speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = TaskGraph::new();
        let stats = ScheduleStats::analyze(&g, &SimConfig::default(), &[1]);
        assert_eq!(stats.average_parallelism(), 0.0);
        assert_eq!(stats.max_speedup(), 1.0);
    }
}
