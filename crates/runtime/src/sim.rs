//! Discrete-event scheduler simulation.
//!
//! The paper's strong-scaling figures (Figs. 11, 12, 16) were measured on 128-core
//! nodes and a 10,240-core cluster; the reproduction environment has a single core.
//! Rather than skip those experiments, we *replay the real task DAGs* (built by the
//! factorization drivers, with per-task costs taken from the actual flop counters) on
//! `P` virtual workers with a list scheduler.  The simulation also charges a per-task
//! runtime overhead, modelling the PaRSEC behaviour visible in the paper's Fig. 13
//! trace, and an optional sequential "task submission" bottleneck on worker 0.
//!
//! The output is a simulated makespan plus a full [`Trace`], so the same machinery
//! regenerates both the scaling curves and the trace-style overhead breakdown.

use crate::dag::{TaskGraph, TaskId};
use crate::trace::{Trace, TraceEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a scheduling simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of virtual workers (cores).
    pub workers: usize,
    /// Execution rate in work units (flops) per second per worker.
    pub flops_per_second: f64,
    /// Fixed runtime overhead charged on the worker for every task (seconds).
    /// Models the per-task cost of a dataflow runtime (PaRSEC in the paper).
    pub per_task_overhead: f64,
    /// Minimum task duration (seconds); very small tasks are dominated by this floor.
    pub min_task_time: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workers: 1,
            // A deliberately modest per-core rate (a few GFLOP/s) representative of the
            // per-core dgemm throughput of the paper's EPYC 7742 node.
            flops_per_second: 4.0e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        }
    }
}

/// Result of a scheduling simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated wall-clock time (seconds).
    pub makespan: f64,
    /// Total useful compute time over all workers (seconds).
    pub useful_time: f64,
    /// Total runtime overhead over all workers (seconds).
    pub overhead_time: f64,
    /// The full execution trace.
    pub trace: Trace,
}

impl SimResult {
    /// Parallel efficiency relative to the ideal `useful_time / workers`.
    pub fn efficiency(&self, workers: usize) -> f64 {
        if self.makespan == 0.0 {
            return 1.0;
        }
        self.useful_time / (workers as f64 * self.makespan)
    }
}

/// Simulate list-scheduling of `graph` under `cfg`.
///
/// Ready tasks are assigned to the earliest-available worker in task-id order (a
/// deterministic HEFT-like policy without priorities, which is what dynamic runtimes
/// achieve in practice for these regular DAGs).
pub fn simulate_schedule(graph: &TaskGraph, cfg: &SimConfig) -> SimResult {
    let workers = cfg.workers.max(1);
    let n = graph.len();
    let mut trace = Trace::new(workers);
    if n == 0 {
        return SimResult {
            makespan: 0.0,
            useful_time: 0.0,
            overhead_time: 0.0,
            trace,
        };
    }
    let task_time = |cost: f64| -> f64 { (cost / cfg.flops_per_second).max(cfg.min_task_time) };

    // Event-driven simulation: a priority queue of (finish_time, worker, task).
    let mut remaining: Vec<usize> = graph.iter().map(|t| t.deps.len()).collect();
    let mut ready: Vec<TaskId> = graph
        .iter()
        .filter(|t| t.deps.is_empty())
        .map(|t| t.id)
        .collect();
    ready.sort();
    let mut worker_free = vec![0.0f64; workers];
    // `ready_at[t]` is the time at which task t became ready (max finish of its deps).
    let mut ready_at = vec![0.0f64; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    // Times are ordered through a fixed-point key to keep the heap total-ordered.
    let key = |t: f64| -> u64 { (t * 1e9) as u64 };

    let mut useful = 0.0;
    let mut overhead = 0.0;
    let mut completed = 0usize;
    let mut makespan = 0.0f64;

    // Helper to dispatch every currently-ready task onto the earliest-free workers.
    let dispatch = |ready: &mut Vec<TaskId>,
                    worker_free: &mut Vec<f64>,
                    heap: &mut BinaryHeap<Reverse<(u64, usize, usize)>>,
                    trace: &mut Trace,
                    ready_at: &Vec<f64>,
                    useful: &mut f64,
                    overhead: &mut f64,
                    makespan: &mut f64| {
        while let Some(tid) = ready.first().copied() {
            ready.remove(0);
            // Earliest-available worker.
            let (w, _) = worker_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap_or_else(|| unreachable!("SimConfig guarantees at least one worker"));
            let node = graph.node(tid);
            let start = worker_free[w].max(ready_at[tid.0]);
            let oh_end = start + cfg.per_task_overhead;
            let end = oh_end + task_time(node.cost);
            if cfg.per_task_overhead > 0.0 {
                trace.push(TraceEvent {
                    worker: w,
                    start,
                    end: oh_end,
                    kind: None,
                    task: tid.0,
                });
                *overhead += cfg.per_task_overhead;
            }
            trace.push(TraceEvent {
                worker: w,
                start: oh_end,
                end,
                kind: Some(node.kind),
                task: tid.0,
            });
            *useful += end - oh_end;
            worker_free[w] = end;
            *makespan = makespan.max(end);
            heap.push(Reverse((key(end), w, tid.0)));
        }
    };

    dispatch(
        &mut ready,
        &mut worker_free,
        &mut heap,
        &mut trace,
        &ready_at,
        &mut useful,
        &mut overhead,
        &mut makespan,
    );

    while completed < n {
        let Reverse((fin_key, _w, tid)) = heap
            .pop()
            .unwrap_or_else(|| unreachable!("simulation deadlock: no running tasks"));
        let fin = fin_key as f64 / 1e9;
        completed += 1;
        for &dep in &graph.node(TaskId(tid)).dependents {
            remaining[dep.0] -= 1;
            ready_at[dep.0] = ready_at[dep.0].max(fin);
            if remaining[dep.0] == 0 {
                ready.push(dep);
            }
        }
        ready.sort();
        dispatch(
            &mut ready,
            &mut worker_free,
            &mut heap,
            &mut trace,
            &ready_at,
            &mut useful,
            &mut overhead,
            &mut makespan,
        );
    }

    SimResult {
        makespan,
        useful_time: useful,
        overhead_time: overhead,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskKind;

    fn chain(n: usize, cost: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..n {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(g.add_task(TaskKind::Factor, cost, &deps));
        }
        g
    }

    fn independent(n: usize, cost: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add_task(TaskKind::Update, cost, &[]);
        }
        g
    }

    fn cfg(workers: usize) -> SimConfig {
        SimConfig {
            workers,
            flops_per_second: 1.0, // cost expressed directly in seconds
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        }
    }

    #[test]
    fn independent_tasks_scale_linearly() {
        let g = independent(64, 1.0);
        let t1 = simulate_schedule(&g, &cfg(1)).makespan;
        let t8 = simulate_schedule(&g, &cfg(8)).makespan;
        let t64 = simulate_schedule(&g, &cfg(64)).makespan;
        assert!((t1 - 64.0).abs() < 1e-6);
        assert!((t8 - 8.0).abs() < 1e-6);
        assert!((t64 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chain_does_not_scale() {
        let g = chain(20, 1.0);
        let t1 = simulate_schedule(&g, &cfg(1)).makespan;
        let t16 = simulate_schedule(&g, &cfg(16)).makespan;
        assert!((t1 - 20.0).abs() < 1e-6);
        assert!(
            (t16 - 20.0).abs() < 1e-6,
            "a chain's makespan equals its critical path"
        );
    }

    #[test]
    fn makespan_is_bounded_by_work_and_critical_path() {
        // Diamond DAG.
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 2.0, &[]);
        let b = g.add_task(TaskKind::Solve, 3.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 4.0, &[a]);
        let d = g.add_task(TaskKind::Update, 1.0, &[b, c]);
        let _ = d;
        let res = simulate_schedule(&g, &cfg(2));
        assert!(res.makespan >= g.critical_path() - 1e-9);
        assert!(res.makespan <= g.total_work() + 1e-9);
        assert!((res.makespan - 7.0).abs() < 1e-6); // 2 + 4 + 1, with b overlapping c
        assert!((res.useful_time - 10.0).abs() < 1e-6);
        assert_eq!(res.overhead_time, 0.0);
    }

    #[test]
    fn per_task_overhead_hurts_small_tasks() {
        let g = independent(100, 1e-3);
        let fast = simulate_schedule(
            &g,
            &SimConfig {
                workers: 4,
                flops_per_second: 1.0,
                per_task_overhead: 0.0,
                min_task_time: 0.0,
            },
        );
        let slow = simulate_schedule(
            &g,
            &SimConfig {
                workers: 4,
                flops_per_second: 1.0,
                per_task_overhead: 1e-3,
                min_task_time: 0.0,
            },
        );
        assert!(slow.makespan > 1.5 * fast.makespan);
        assert!(slow.trace.overhead_fraction() > 0.3);
        assert!(slow.efficiency(4) < 1.0);
    }

    #[test]
    fn trace_is_consistent_with_makespan() {
        let g = independent(10, 2.0);
        let res = simulate_schedule(&g, &cfg(3));
        assert!((res.trace.makespan() - res.makespan).abs() < 1e-6);
        assert_eq!(res.trace.events.len(), 10);
        // Workers never run two tasks at once.
        for w in 0..3 {
            let mut evs: Vec<_> = res.trace.events.iter().filter(|e| e.worker == w).collect();
            evs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for pair in evs.windows(2) {
                assert!(pair[1].start >= pair[0].end - 1e-9);
            }
        }
    }

    #[test]
    fn empty_graph_simulates_to_zero() {
        let g = TaskGraph::new();
        let res = simulate_schedule(&g, &cfg(4));
        assert_eq!(res.makespan, 0.0);
    }

    #[test]
    fn dependencies_are_respected_in_time() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 5.0, &[]);
        let b = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let res = simulate_schedule(&g, &cfg(4));
        let ev_a = res.trace.events.iter().find(|e| e.task == a.0).unwrap();
        let ev_b = res.trace.events.iter().find(|e| e.task == b.0).unwrap();
        assert!(ev_b.start >= ev_a.end - 1e-9);
    }
}
