//! A condvar-parked thread pool and a dependency-tracking DAG executor.
//!
//! The pool is the substrate standing in for the PaRSEC/StarPU runtimes referenced by
//! the paper: the LORAPO-style baseline submits its GETRF/TRSM/GEMM tasks with
//! explicit dependencies and the executor releases them as their predecessors finish.
//! The H²-ULV solver, by contrast, only needs `par_for` (no dependencies) — which is
//! exactly the point the paper makes.
//!
//! Two design points matter for scaling measurements:
//!
//! * **Idle workers park on a condition variable** instead of spinning on
//!   `yield_now`, so an idle pool consumes no CPU and wake-ups are O(1); `wait_idle`
//!   likewise blocks on a condvar signalled when the in-flight count reaches zero.
//! * **Dependents are released by the completing worker**, not by a coordinator
//!   sweeping ready tasks in waves.  A wave barrier would serialize across levels the
//!   paper shows to be independent; worker-side release lets a task start the moment
//!   its last predecessor finishes, regardless of what the rest of the graph is doing.

use crate::dag::{TaskGraph, TaskId};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle and its workers.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is pushed or shutdown is requested.
    work_available: Condvar,
    /// Signalled when the in-flight count drops to zero.
    idle: Condvar,
}

struct PoolState {
    jobs: VecDeque<Job>,
    /// Jobs submitted but not yet finished (queued + running).
    in_flight: usize,
    shutdown: bool,
}

impl PoolShared {
    fn submit(self: &Arc<Self>, job: Job) {
        {
            let mut state = self.state.lock();
            state.in_flight += 1;
            state.jobs.push_back(job);
        }
        self.work_available.notify_one();
    }
}

/// A thread pool whose idle workers sleep on a condition variable.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (at least one).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            idle: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(num_threads);
        for idx in 0..num_threads {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("h2-runtime-worker-{idx}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn worker thread"),
            );
        }
        ThreadPool {
            shared,
            threads,
            num_threads,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Submit a job for asynchronous execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.submit(Box::new(job));
    }

    /// Block until every submitted job has finished.  Parks on a condvar — no
    /// busy-waiting.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock();
        while state.in_flight != 0 {
            self.shared.idle.wait(&mut state);
        }
    }

    /// Run a closure over `0..n` in parallel and wait for completion.
    pub fn par_for(&self, n: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        let f = Arc::new(f);
        for i in 0..n {
            let f = Arc::clone(&f);
            self.submit(move || f(i));
        }
        self.wait_idle();
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                shared.work_available.wait(&mut state);
            }
        };
        job();
        let became_idle = {
            let mut state = shared.state.lock();
            state.in_flight -= 1;
            state.in_flight == 0
        };
        if became_idle {
            shared.idle.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.wait_idle();
        self.shared.state.lock().shutdown = true;
        self.shared.work_available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Executes a [`TaskGraph`] whose tasks carry real closures, releasing each task only
/// when all of its dependencies have completed.
pub struct DagExecutor {
    pool: ThreadPool,
}

/// Per-execution shared state for the DAG run.
struct ExecShared {
    remaining: Vec<AtomicUsize>,
    actions: Vec<Mutex<Option<Job>>>,
    completion: Mutex<Vec<TaskId>>,
    dependents: Vec<Vec<TaskId>>,
}

/// Submit task `id` to the pool; on completion the worker releases dependents
/// and submits any that became ready — no coordinator round-trip.
fn spawn_task(pool: &Arc<PoolShared>, exec: &Arc<ExecShared>, id: TaskId) {
    let pool_for_job = Arc::clone(pool);
    let exec_for_job = Arc::clone(exec);
    pool.submit(Box::new(move || {
        let action = exec_for_job.actions[id.0].lock().take();
        if let Some(job) = action {
            job();
        }
        exec_for_job.completion.lock().push(id);
        for &dep in &exec_for_job.dependents[id.0] {
            // fetch_sub returns the previous value: 1 means this task was the
            // last unmet dependency and the dependent is now ready.
            if exec_for_job.remaining[dep.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                spawn_task(&pool_for_job, &exec_for_job, dep);
            }
        }
    }));
}

impl DagExecutor {
    /// Create an executor backed by a pool with `num_threads` workers.
    pub fn new(num_threads: usize) -> Self {
        DagExecutor {
            pool: ThreadPool::new(num_threads),
        }
    }

    /// Execute the graph.  `actions[i]` is the closure for task `i`; tasks with no
    /// action (None) are treated as zero-cost synchronization points.  Returns the
    /// order in which tasks completed (useful for tests).
    ///
    /// # Panics
    /// Panics if `actions.len() != graph.len()`.
    pub fn execute(&self, graph: &TaskGraph, actions: Vec<Option<Job>>) -> Vec<TaskId> {
        assert_eq!(actions.len(), graph.len(), "one action per task required");
        if graph.is_empty() {
            return Vec::new();
        }
        let exec = Arc::new(ExecShared {
            remaining: graph
                .iter()
                .map(|n| AtomicUsize::new(n.deps.len()))
                .collect(),
            actions: actions.into_iter().map(Mutex::new).collect(),
            completion: Mutex::new(Vec::with_capacity(graph.len())),
            dependents: graph.iter().map(|n| n.dependents.clone()).collect(),
        });

        // Seed the pool with the roots; everything else is released by workers.
        for n in graph.iter() {
            if n.deps.is_empty() {
                spawn_task(&self.pool.shared, &exec, n.id);
            }
        }
        self.pool.wait_idle();

        let order = exec.completion.lock().clone();
        debug_assert_eq!(
            order.len(),
            graph.len(),
            "DAG execution left tasks unreleased"
        );
        order
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskKind;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_runs_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new((0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let h = Arc::clone(&hits);
        pool.par_for(100, move |i| {
            h[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn submit_and_wait_idle() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(pool.num_threads(), 2);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = ThreadPool::new(3);
        pool.wait_idle();
        pool.wait_idle();
    }

    #[test]
    fn idle_pool_consumes_no_cpu() {
        // With parked workers, an idle pool's threads all block; this test just
        // exercises the park/unpark transition repeatedly.
        let pool = ThreadPool::new(4);
        for round in 0..20 {
            let counter = Arc::new(AtomicU64::new(0));
            let c = Arc::clone(&counter);
            pool.par_for(8, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 8, "round {round}");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn dag_executor_respects_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let b = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let d = g.add_task(TaskKind::Update, 1.0, &[b, c]);

        let log = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, log: &Arc<Mutex<Vec<usize>>>| -> Option<Job> {
            let log = Arc::clone(log);
            Some(Box::new(move || {
                log.lock().push(id);
            }))
        };
        let actions = vec![mk(0, &log), mk(1, &log), mk(2, &log), mk(3, &log)];
        let exec = DagExecutor::new(3);
        let order = exec.execute(&g, actions);
        assert_eq!(order.len(), 4);
        let seq = log.lock().clone();
        let pos = |x: usize| seq.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        let _ = (a, b, c, d);
    }

    #[test]
    fn dag_executor_handles_empty_and_none_actions() {
        let exec = DagExecutor::new(1);
        let g = TaskGraph::new();
        assert!(exec.execute(&g, vec![]).is_empty());

        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Other, 0.0, &[]);
        let _b = g.add_task(TaskKind::Other, 0.0, &[a]);
        let order = exec.execute(&g, vec![None, None]);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], a);
    }

    #[test]
    fn wide_dag_executes_all_tasks() {
        let mut g = TaskGraph::new();
        let root = g.add_task(TaskKind::Factor, 1.0, &[]);
        let mids: Vec<TaskId> = (0..32)
            .map(|_| g.add_task(TaskKind::Update, 1.0, &[root]))
            .collect();
        let _join = g.add_task(TaskKind::Other, 1.0, &mids);
        let counter = Arc::new(AtomicU64::new(0));
        let actions: Vec<Option<Job>> = (0..g.len())
            .map(|_| {
                let c = Arc::clone(&counter);
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job)
            })
            .collect();
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, actions);
        assert_eq!(order.len(), 34);
        assert_eq!(counter.load(Ordering::SeqCst), 34);
    }

    #[test]
    fn deep_chain_executes_in_order_without_coordinator() {
        // A pure chain: worker-side release must carry it end to end.
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for _ in 0..200 {
            let id = g.add_task(TaskKind::Update, 1.0, &prev);
            prev = vec![id];
        }
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, (0..200).map(|_| None).collect());
        assert_eq!(order.len(), 200);
        for (i, id) in order.iter().enumerate() {
            assert_eq!(id.0, i, "chain must complete strictly in order");
        }
    }

    #[test]
    fn diamond_lattice_respects_all_edges() {
        // Layered random-ish lattice: every node depends on the whole previous
        // layer.  Completion order must respect layer order.
        let mut g = TaskGraph::new();
        let mut layers: Vec<Vec<TaskId>> = Vec::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for w in [3usize, 5, 2, 7, 1, 4] {
            let layer: Vec<TaskId> = (0..w)
                .map(|_| g.add_task(TaskKind::Update, 1.0, &prev))
                .collect();
            layers.push(layer.clone());
            prev = layer;
        }
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, (0..g.len()).map(|_| None).collect());
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, t)| (t.0, i)).collect();
        for pair in layers.windows(2) {
            for a in &pair[0] {
                for b in &pair[1] {
                    assert!(pos[&a.0] < pos[&b.0], "{a:?} must precede {b:?}");
                }
            }
        }
    }
}
