//! A work-stealing thread pool and a dependency-tracking DAG executor.
//!
//! The pool is the substrate standing in for the PaRSEC/StarPU runtimes referenced by
//! the paper: the LORAPO-style baseline submits its GETRF/TRSM/GEMM tasks with
//! explicit dependencies and the executor releases them as their predecessors finish.
//! The H²-ULV solver drives its per-cluster basis construction and elimination
//! through the same executor — a level is an almost-flat graph there, which is
//! exactly the point the paper makes.
//!
//! Scheduling design (the three properties the scaling measurements depend on):
//!
//! * **Per-worker deques with stealing.**  Every worker owns a deque: tasks a worker
//!   spawns (released dependents) go to the LIFO end of its own deque, preserving
//!   cache locality along dependency chains; idle workers first drain the shared
//!   priority injector, then steal from the FIFO end of a victim's deque — the
//!   Chase-Lev discipline, here with short critical sections guarded by per-deque
//!   locks instead of a lock-free ring since tasks are coarse (whole block-row
//!   eliminations).  Job *acquisition* never touches shared queue order: the owner
//!   pops its own deque without competing with other workers' pops.  Submission
//!   and completion still take the global sync mutex briefly (the outstanding-task
//!   count and the no-lost-wakeup protocol live there) — cheap for this solver's
//!   coarse tasks; replacing it with an atomic counter + event-count parking is
//!   the remaining step for fine-grained workloads.
//! * **Critical-path-first priorities.**  [`DagExecutor`] orders the shared injector
//!   by each task's *downward rank* (longest cost-weighted path to a sink,
//!   [`TaskGraph::downward_ranks`]), so workers always start the task that gates the
//!   most downstream work — the standard list-scheduling heuristic that keeps the
//!   makespan within Graham's `T_1/P + critical_path` bound.
//! * **Idleness counts outstanding tasks, not queue length.**  `wait_idle` blocks
//!   until the number of *submitted-but-unfinished* tasks reaches zero.  With
//!   stealing, a task can be in flight in a worker's local deque or mid-execution
//!   while every shared structure looks empty — counting only the shared queue
//!   would let `wait_idle` return early and race the local-deque work.
//!
//! Workers park on a condition variable when no work exists anywhere, so an idle
//! pool consumes no CPU.  A panicking task is caught, recorded, and re-thrown from
//! `wait_idle`/`execute` on the waiting thread (dependents of a panicked task are
//! never released).

use crate::dag::{TaskGraph, TaskId};
use crate::stats::WorkStealCounters;
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A task of a [`DagExecutor`] graph panicked.  The executor catches the
/// panic, cancels the rest of the graph (dependents are never released and
/// queued tasks drain as no-ops) and reports it as this error instead of
/// unwinding, so the pool stays reusable and the caller can surface a typed
/// failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The graph task whose action panicked.
    pub task: TaskId,
    /// The panic payload, stringified when possible.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DAG task {} panicked: {}", self.task.0, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Best-effort stringification of a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-wide pool identifier source, so a worker thread can tell which pool it
/// belongs to (threads of pool A submitting to pool B must use B's injector, not
/// their own deque index).
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// `(pool_id, worker_index)` of the pool that owns the current thread.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

/// An injector entry: higher priority first, FIFO among equal priorities.
struct PrioJob {
    prio: f64,
    seq: u64,
    job: Job,
}

impl PartialEq for PrioJob {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for PrioJob {}
impl PartialOrd for PrioJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: larger priority wins; among equal priorities the earlier
        // submission wins (reverse the sequence comparison).
        self.prio
            .total_cmp(&other.prio)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Counters protected by the sync mutex.
struct SyncState {
    /// Tasks submitted but not yet finished (in a deque, the injector, or running).
    in_flight: usize,
    shutdown: bool,
}

/// Shared state between the pool handle and its workers.
pub(crate) struct PoolShared {
    pool_id: usize,
    sync: Mutex<SyncState>,
    /// Signalled when a job is pushed or shutdown is requested.
    work_available: Condvar,
    /// Signalled when the in-flight count drops to zero.
    idle: Condvar,
    /// Shared priority queue for submissions from outside the pool.
    injector: Mutex<BinaryHeap<PrioJob>>,
    /// One deque per worker: owner pushes/pops the back, thieves pop the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Injector FIFO tie-break sequence.
    seq: AtomicU64,
    /// First panic payload of any task; re-thrown by `wait_idle`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    // Scheduling counters (see [`WorkStealCounters`]).
    n_executed: AtomicU64,
    n_local: AtomicU64,
    n_injector: AtomicU64,
    n_steals: AtomicU64,
}

impl PoolShared {
    /// Worker index of the current thread *in this pool*, if any.
    fn own_worker_index(&self) -> Option<usize> {
        match WORKER.with(|w| w.get()) {
            Some((pid, idx)) if pid == self.pool_id => Some(idx),
            _ => None,
        }
    }

    /// Enqueue a job.  Worker threads of this pool push to the LIFO end of their own
    /// deque (priority is then positional: push lowest-priority first); everyone else
    /// goes through the priority injector.
    pub(crate) fn push(&self, prio: f64, job: Job) {
        {
            let mut s = self.sync.lock();
            s.in_flight += 1;
            // The queue push happens under the sync lock: a worker that found all
            // queues empty re-checks them under the same lock before parking, so a
            // notify can never be lost between its check and its wait.
            match self.own_worker_index() {
                Some(idx) => self.locals[idx].lock().push_back(job),
                None => {
                    let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                    self.injector.lock().push(PrioJob { prio, seq, job });
                }
            }
        }
        self.work_available.notify_one();
    }

    /// Try to acquire a job: own deque (LIFO) → injector (highest priority) → steal
    /// (FIFO, round-robin over victims).
    fn try_pop(&self, idx: usize) -> Option<Job> {
        if let Some(job) = self.locals[idx].lock().pop_back() {
            self.n_local.fetch_add(1, Ordering::Relaxed);
            self.n_executed.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        if let Some(pj) = self.injector.lock().pop() {
            self.n_injector.fetch_add(1, Ordering::Relaxed);
            self.n_executed.fetch_add(1, Ordering::Relaxed);
            return Some(pj.job);
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (idx + off) % n;
            if let Some(job) = self.locals[victim].lock().pop_front() {
                self.n_steals.fetch_add(1, Ordering::Relaxed);
                self.n_executed.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Blocking job acquisition; returns `None` on shutdown.
    fn next_job(&self, idx: usize) -> Option<Job> {
        // Fast path without the sync lock.
        if let Some(job) = self.try_pop(idx) {
            return Some(job);
        }
        let mut s = self.sync.lock();
        loop {
            if let Some(job) = self.try_pop(idx) {
                return Some(job);
            }
            if s.shutdown {
                return None;
            }
            self.work_available.wait(&mut s);
        }
    }

    /// Mark one task finished and wake `wait_idle` callers when everything is done.
    fn finish_one(&self) {
        let became_idle = {
            let mut s = self.sync.lock();
            s.in_flight -= 1;
            s.in_flight == 0
        };
        if became_idle {
            self.idle.notify_all();
        }
    }
}

/// A work-stealing thread pool (per-worker deques, shared priority injector,
/// condvar-parked idle workers).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (at least one).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(PoolShared {
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            sync: Mutex::new(SyncState {
                in_flight: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            idle: Condvar::new(),
            injector: Mutex::new(BinaryHeap::new()),
            locals: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            seq: AtomicU64::new(0),
            panic: Mutex::new(None),
            n_executed: AtomicU64::new(0),
            n_local: AtomicU64::new(0),
            n_injector: AtomicU64::new(0),
            n_steals: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(num_threads);
        for idx in 0..num_threads {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("h2-runtime-worker-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .unwrap_or_else(|e| panic!("failed to spawn worker thread: {e}")),
            );
        }
        ThreadPool {
            shared,
            threads,
            num_threads,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Shared-state handle for the in-crate live graph (`crate::live`).
    pub(crate) fn shared_handle(&self) -> &Arc<PoolShared> {
        &self.shared
    }

    /// Submit a job for asynchronous execution (neutral priority).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.push(0.0, Box::new(job));
    }

    /// Submit a job with an explicit priority — higher runs first among injector
    /// entries.  (Jobs submitted from a worker thread of this pool go to that
    /// worker's own deque, where LIFO position takes the role of priority.)
    pub fn submit_prioritized(&self, prio: f64, job: impl FnOnce() + Send + 'static) {
        self.shared.push(prio, Box::new(job));
    }

    /// Block until every submitted job has finished — including jobs that were
    /// submitted *by other jobs* and are still in a worker's local deque; idleness
    /// is detected from the outstanding-task count, never from queue emptiness.
    /// Re-throws the first panic raised by any task.
    pub fn wait_idle(&self) {
        if let Err(p) = self.try_wait_idle() {
            resume_unwind(p);
        }
    }

    /// Like [`wait_idle`](Self::wait_idle), but hands the first task panic back
    /// as a value instead of re-throwing it — the containment-path variant the
    /// DAG executor builds on.
    pub fn try_wait_idle(&self) -> Result<(), Box<dyn std::any::Any + Send + 'static>> {
        {
            let mut s = self.shared.sync.lock();
            while s.in_flight != 0 {
                self.shared.idle.wait(&mut s);
            }
        }
        match self.shared.panic.lock().take() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Run a closure over `0..n` in parallel and wait for completion.
    pub fn par_for(&self, n: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        let f = Arc::new(f);
        for i in 0..n {
            let f = Arc::clone(&f);
            self.submit(move || f(i));
        }
        self.wait_idle();
    }

    /// Snapshot of the scheduling counters accumulated since pool creation.
    pub fn steal_counters(&self) -> WorkStealCounters {
        WorkStealCounters {
            executed: self.shared.n_executed.load(Ordering::Relaxed),
            local_pops: self.shared.n_local.load(Ordering::Relaxed),
            injector_pops: self.shared.n_injector.load(Ordering::Relaxed),
            steals: self.shared.n_steals.load(Ordering::Relaxed),
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, idx: usize) {
    // Nested kernels (packed GEMM bands, rayon-stub par_iter) must not fan out on
    // top of a busy DAG worker.
    rayon::mark_worker_thread();
    WORKER.with(|w| w.set(Some((shared.pool_id, idx))));
    while let Some(job) = shared.next_job(idx) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = shared.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        shared.finish_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut s = self.shared.sync.lock();
            while s.in_flight != 0 {
                self.shared.idle.wait(&mut s);
            }
            s.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Executes a [`TaskGraph`] whose tasks carry real closures, releasing each task only
/// when all of its dependencies have completed.  Ready tasks are started
/// critical-path-first (see module docs).
pub struct DagExecutor {
    pool: ThreadPool,
}

/// Per-execution shared state for the DAG run.
struct ExecShared {
    remaining: Vec<AtomicUsize>,
    actions: Vec<Mutex<Option<Job>>>,
    completion: Mutex<Vec<TaskId>>,
    dependents: Vec<Vec<TaskId>>,
    /// Downward rank of every task (critical-path-first priority).
    ranks: Vec<f64>,
    /// Set when a task panics: already-queued tasks drain as no-ops and no
    /// further dependents are released, so the run winds down promptly.
    cancelled: AtomicBool,
    /// First task panic of the run, reported by `execute` as a typed error.
    failure: Mutex<Option<TaskPanic>>,
}

/// Submit task `id` to the pool; on completion the worker releases dependents
/// and submits any that became ready — no coordinator round-trip.  A panicking
/// action is caught here (not in the pool's backstop), recorded in
/// `exec.failure`, and cancels the rest of the graph.
fn spawn_task(pool: &Arc<PoolShared>, exec: &Arc<ExecShared>, id: TaskId) {
    let pool_for_job = Arc::clone(pool);
    let exec_for_job = Arc::clone(exec);
    pool.push(
        exec.ranks[id.0],
        Box::new(move || {
            if exec_for_job.cancelled.load(Ordering::Acquire) {
                // The graph is being torn down; drain without running.  The
                // pool still counts this job via `finish_one`, so `wait_idle`
                // keeps its outstanding-task guarantee.
                return;
            }
            let action = exec_for_job.actions[id.0].lock().take();
            if let Some(job) = action {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    let mut f = exec_for_job.failure.lock();
                    if f.is_none() {
                        *f = Some(TaskPanic {
                            task: id,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                    exec_for_job.cancelled.store(true, Ordering::Release);
                    // Dependents of a panicked task are never released.
                    return;
                }
            }
            exec_for_job.completion.lock().push(id);
            // fetch_sub returns the previous value: 1 means this task was the
            // last unmet dependency and the dependent is now ready.
            let mut ready: Vec<TaskId> = exec_for_job.dependents[id.0]
                .iter()
                .copied()
                .filter(|dep| exec_for_job.remaining[dep.0].fetch_sub(1, Ordering::AcqRel) == 1)
                .collect();
            // Push lowest rank first: the worker's deque is LIFO, so the
            // highest-rank (most critical) dependent is executed next.
            ready.sort_by(|a, b| exec_for_job.ranks[a.0].total_cmp(&exec_for_job.ranks[b.0]));
            for dep in ready {
                spawn_task(&pool_for_job, &exec_for_job, dep);
            }
        }),
    );
}

/// Resolve a worker-thread count: `explicit` if positive, else the
/// `H2_NUM_THREADS` environment variable, else the machine's available
/// parallelism.  Shared by every DAG-driven construction/factorization so they
/// cannot silently diverge.
pub fn resolve_num_threads(explicit: usize) -> usize {
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("H2_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl DagExecutor {
    /// Create an executor backed by a pool with `num_threads` workers.
    pub fn new(num_threads: usize) -> Self {
        DagExecutor {
            pool: ThreadPool::new(num_threads),
        }
    }

    /// Execute the graph.  `actions[i]` is the closure for task `i`; tasks with no
    /// action (None) are treated as zero-cost synchronization points.  Returns the
    /// order in which tasks completed (useful for tests).
    ///
    /// A panicking task action does **not** unwind into the caller: the panic is
    /// caught, the remaining graph is cancelled (queued tasks drain as no-ops,
    /// dependents are never released), and the panic comes back as
    /// [`TaskPanic`].  The pool stays reusable afterwards.
    ///
    /// # Panics
    /// Panics if `actions.len() != graph.len()` — a caller bug, not an input.
    pub fn execute(
        &self,
        graph: &TaskGraph,
        actions: Vec<Option<Job>>,
    ) -> Result<Vec<TaskId>, TaskPanic> {
        assert_eq!(actions.len(), graph.len(), "one action per task required");
        if graph.is_empty() {
            return Ok(Vec::new());
        }
        let exec = Arc::new(ExecShared {
            remaining: graph
                .iter()
                .map(|n| AtomicUsize::new(n.deps.len()))
                .collect(),
            actions: actions.into_iter().map(Mutex::new).collect(),
            completion: Mutex::new(Vec::with_capacity(graph.len())),
            dependents: graph.iter().map(|n| n.dependents.clone()).collect(),
            ranks: graph.downward_ranks(),
            cancelled: AtomicBool::new(false),
            failure: Mutex::new(None),
        });

        // Seed the injector with the roots, most critical first; everything else is
        // released by workers.
        let mut roots: Vec<TaskId> = graph
            .iter()
            .filter(|n| n.deps.is_empty())
            .map(|n| n.id)
            .collect();
        roots.sort_by(|a, b| exec.ranks[b.0].total_cmp(&exec.ranks[a.0]));
        for id in roots {
            spawn_task(&self.pool.shared, &exec, id);
        }
        // DAG actions catch their own panics (spawn_task), so this cannot
        // re-throw for them; the pool-level backstop only fires for plain
        // `submit` jobs sharing the pool.
        self.pool.wait_idle();

        if let Some(failure) = exec.failure.lock().take() {
            return Err(failure);
        }
        let order = exec.completion.lock().clone();
        debug_assert_eq!(
            order.len(),
            graph.len(),
            "DAG execution left tasks unreleased"
        );
        Ok(order)
    }

    /// Execute a graph whose closures borrow from the caller's stack.
    ///
    /// Identical to [`execute`](Self::execute), but the closures only need to live
    /// for `'env` instead of `'static` — the pattern `std::thread::scope` provides
    /// for raw threads.
    pub fn execute_scoped<'env>(
        &self,
        graph: &TaskGraph,
        actions: Vec<Option<Box<dyn FnOnce() + Send + 'env>>>,
    ) -> Result<Vec<TaskId>, TaskPanic> {
        // SAFETY: `execute` blocks until every spawned task has finished
        // (`wait_idle` counts outstanding tasks — a cancelled run still drains
        // every queued job as a counted no-op) and drops the remaining
        // unspawned closures before returning, so no closure can outlive
        // `'env`.  Task panics are caught inside the task job itself, so no
        // unwind path escapes `execute` while closures are outstanding.
        let actions: Vec<Option<Job>> = actions
            .into_iter()
            .map(|o| {
                o.map(|b| unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(b) })
            })
            .collect();
        self.execute(graph, actions)
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskKind;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_runs_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new((0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let h = Arc::clone(&hits);
        pool.par_for(100, move |i| {
            h[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn submit_and_wait_idle() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(pool.num_threads(), 2);
        // Every executed task came through exactly one acquisition channel.
        let c = pool.steal_counters();
        assert_eq!(c.executed, 50);
        assert_eq!(c.executed, c.local_pops + c.injector_pops + c.steals);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = ThreadPool::new(3);
        pool.wait_idle();
        pool.wait_idle();
    }

    #[test]
    fn wait_idle_counts_tasks_spawned_by_tasks() {
        // Regression test for the local-deque race: a task that submits follow-up
        // work from inside a worker pushes to its *local* deque; `wait_idle` must
        // count that work as outstanding even though the shared injector is empty.
        for _round in 0..20 {
            let pool = Arc::new(ThreadPool::new(4));
            let counter = Arc::new(AtomicU64::new(0));
            for _ in 0..8 {
                let pool2 = Arc::clone(&pool);
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    // Deep chain of worker-side submissions, each with a small
                    // delay so the parent finishes while the child is queued.
                    fn chain(pool: &Arc<ThreadPool>, c: &Arc<AtomicU64>, depth: usize) {
                        c.fetch_add(1, Ordering::SeqCst);
                        if depth > 0 {
                            let pool2 = Arc::clone(pool);
                            let c2 = Arc::clone(c);
                            pool.submit(move || {
                                std::thread::sleep(std::time::Duration::from_micros(50));
                                chain(&pool2, &c2, depth - 1);
                            });
                        }
                    }
                    chain(&pool2, &c, 5);
                });
            }
            pool.wait_idle();
            assert_eq!(
                counter.load(Ordering::SeqCst),
                8 * 6,
                "wait_idle returned before locally-queued descendants finished"
            );
        }
    }

    #[test]
    fn idle_pool_consumes_no_cpu() {
        // With parked workers, an idle pool's threads all block; this test just
        // exercises the park/unpark transition repeatedly.
        let pool = ThreadPool::new(4);
        for round in 0..20 {
            let counter = Arc::new(AtomicU64::new(0));
            let c = Arc::clone(&counter);
            pool.par_for(8, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 8, "round {round}");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn higher_priority_tasks_run_first_on_one_worker() {
        // One worker, jobs seeded while the worker is blocked on the first job:
        // the remaining injector entries must drain highest-priority-first.
        let pool = ThreadPool::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        for (prio, tag) in [(1.0, "low"), (3.0, "high"), (2.0, "mid")] {
            let order = Arc::clone(&order);
            pool.submit_prioritized(prio, move || {
                order.lock().push(tag);
            });
        }
        {
            let (lock, cv) = &*gate;
            *lock.lock() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        assert_eq!(*order.lock(), vec!["high", "mid", "low"]);
    }

    #[test]
    fn task_panic_propagates_to_wait_idle() {
        let pool = ThreadPool::new(2);
        pool.submit(|| panic!("boom in task"));
        let res = catch_unwind(AssertUnwindSafe(|| pool.wait_idle()));
        assert!(res.is_err(), "wait_idle must re-throw the task panic");
        // The pool stays usable afterwards.
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dag_executor_respects_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let b = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let d = g.add_task(TaskKind::Update, 1.0, &[b, c]);

        let log = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, log: &Arc<Mutex<Vec<usize>>>| -> Option<Job> {
            let log = Arc::clone(log);
            Some(Box::new(move || {
                log.lock().push(id);
            }))
        };
        let actions = vec![mk(0, &log), mk(1, &log), mk(2, &log), mk(3, &log)];
        let exec = DagExecutor::new(3);
        let order = exec.execute(&g, actions).unwrap();
        assert_eq!(order.len(), 4);
        let seq = log.lock().clone();
        let pos = |x: usize| seq.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        let _ = (a, b, c, d);
    }

    #[test]
    fn dag_executor_handles_empty_and_none_actions() {
        let exec = DagExecutor::new(1);
        let g = TaskGraph::new();
        assert!(exec.execute(&g, vec![]).unwrap().is_empty());

        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Other, 0.0, &[]);
        let _b = g.add_task(TaskKind::Other, 0.0, &[a]);
        let order = exec.execute(&g, vec![None, None]).unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], a);
    }

    #[test]
    fn wide_dag_executes_all_tasks() {
        let mut g = TaskGraph::new();
        let root = g.add_task(TaskKind::Factor, 1.0, &[]);
        let mids: Vec<TaskId> = (0..32)
            .map(|_| g.add_task(TaskKind::Update, 1.0, &[root]))
            .collect();
        let _join = g.add_task(TaskKind::Other, 1.0, &mids);
        let counter = Arc::new(AtomicU64::new(0));
        let actions: Vec<Option<Job>> = (0..g.len())
            .map(|_| {
                let c = Arc::clone(&counter);
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job)
            })
            .collect();
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, actions).unwrap();
        assert_eq!(order.len(), 34);
        assert_eq!(counter.load(Ordering::SeqCst), 34);
    }

    #[test]
    fn deep_chain_executes_in_order_without_coordinator() {
        // A pure chain: worker-side release must carry it end to end.
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for _ in 0..200 {
            let id = g.add_task(TaskKind::Update, 1.0, &prev);
            prev = vec![id];
        }
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, (0..200).map(|_| None).collect()).unwrap();
        assert_eq!(order.len(), 200);
        for (i, id) in order.iter().enumerate() {
            assert_eq!(id.0, i, "chain must complete strictly in order");
        }
    }

    #[test]
    fn diamond_lattice_respects_all_edges() {
        // Layered random-ish lattice: every node depends on the whole previous
        // layer.  Completion order must respect layer order.
        let mut g = TaskGraph::new();
        let mut layers: Vec<Vec<TaskId>> = Vec::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for w in [3usize, 5, 2, 7, 1, 4] {
            let layer: Vec<TaskId> = (0..w)
                .map(|_| g.add_task(TaskKind::Update, 1.0, &prev))
                .collect();
            layers.push(layer.clone());
            prev = layer;
        }
        let exec = DagExecutor::new(4);
        let order = exec
            .execute(&g, (0..g.len()).map(|_| None).collect())
            .unwrap();
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, t)| (t.0, i)).collect();
        for pair in layers.windows(2) {
            for a in &pair[0] {
                for b in &pair[1] {
                    assert!(pos[&a.0] < pos[&b.0], "{a:?} must precede {b:?}");
                }
            }
        }
    }

    #[test]
    fn execute_scoped_borrows_stack_data() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let _b = g.add_task(TaskKind::Update, 1.0, &[a]);
        let slots: Vec<Mutex<Option<usize>>> = (0..2).map(|_| Mutex::new(None)).collect();
        let exec = DagExecutor::new(2);
        let actions: Vec<Option<Box<dyn FnOnce() + Send + '_>>> = (0..2)
            .map(|i| {
                let slot = &slots[i];
                Some(Box::new(move || {
                    *slot.lock() = Some(i * 10);
                }) as Box<dyn FnOnce() + Send + '_>)
            })
            .collect();
        exec.execute_scoped(&g, actions).unwrap();
        assert_eq!(*slots[0].lock(), Some(0));
        assert_eq!(*slots[1].lock(), Some(10));
    }

    #[test]
    fn dag_panic_is_contained_and_skips_dependents() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let _b = g.add_task(TaskKind::Update, 1.0, &[a]);
        let ran_b = Arc::new(AtomicUsize::new(0));
        let rb = Arc::clone(&ran_b);
        let actions: Vec<Option<Job>> = vec![
            Some(Box::new(|| panic!("task a failed"))),
            Some(Box::new(move || {
                rb.fetch_add(1, Ordering::SeqCst);
            })),
        ];
        let exec = DagExecutor::new(2);
        // The panic is contained: execute returns a typed error, no unwind.
        let err = exec.execute(&g, actions).unwrap_err();
        assert_eq!(err.task, a);
        assert!(err.message.contains("task a failed"), "{}", err.message);
        assert_eq!(
            ran_b.load(Ordering::SeqCst),
            0,
            "dependent of a panicked task must not run"
        );
        // The executor (and its pool) stays reusable after the failure.
        let mut g2 = TaskGraph::new();
        let r = g2.add_task(TaskKind::Factor, 1.0, &[]);
        let _s = g2.add_task(TaskKind::Update, 1.0, &[r]);
        let hits = Arc::new(AtomicUsize::new(0));
        let actions2: Vec<Option<Job>> = (0..2)
            .map(|_| {
                let h = Arc::clone(&hits);
                Some(Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                }) as Job)
            })
            .collect();
        let order = exec.execute(&g2, actions2).unwrap();
        assert_eq!(order.len(), 2);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dag_panic_cancels_remaining_graph() {
        // A chain behind the panicking task: none of it may run, and execute
        // must still drain cleanly.
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let mut prev = a;
        for _ in 0..50 {
            prev = g.add_task(TaskKind::Update, 1.0, &[prev]);
        }
        let ran = Arc::new(AtomicUsize::new(0));
        let actions: Vec<Option<Job>> = (0..g.len())
            .map(|i| {
                if i == 0 {
                    Some(Box::new(|| panic!("root failed")) as Job)
                } else {
                    let r = Arc::clone(&ran);
                    Some(Box::new(move || {
                        r.fetch_add(1, Ordering::SeqCst);
                    }) as Job)
                }
            })
            .collect();
        let exec = DagExecutor::new(4);
        let err = exec.execute(&g, actions).unwrap_err();
        assert_eq!(err.task, a);
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "cancelled chain must not run"
        );
    }
}
