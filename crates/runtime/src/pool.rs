//! A small work-stealing thread pool and a dependency-tracking DAG executor.
//!
//! The pool is the substrate standing in for the PaRSEC/StarPU runtimes referenced by
//! the paper: the LORAPO-style baseline submits its GETRF/TRSM/GEMM tasks with
//! explicit dependencies and the executor releases them as their predecessors finish.
//! The H²-ULV solver, by contrast, only needs `par_for` (no dependencies) — which is
//! exactly the point the paper makes.

use crate::dag::{TaskGraph, TaskId};
use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A work-stealing thread pool.
///
/// Workers pull from a global injector queue and steal from each other's local deques.
/// The pool is deliberately small and synchronous: `scope`-style usage is provided by
/// the higher-level [`DagExecutor`] and `par_for`.
pub struct ThreadPool {
    injector: Arc<Injector<Job>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    in_flight: Arc<AtomicUsize>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool with `num_threads` workers (at least one).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let injector: Arc<Injector<Job>> = Arc::new(Injector::new());
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let workers: Vec<Worker<Job>> = (0..num_threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Arc<Vec<Stealer<Job>>> = Arc::new(workers.iter().map(|w| w.stealer()).collect());
        let mut threads = Vec::with_capacity(num_threads);
        for (idx, local) in workers.into_iter().enumerate() {
            let injector = Arc::clone(&injector);
            let stealers = Arc::clone(&stealers);
            let shutdown = Arc::clone(&shutdown);
            let in_flight = Arc::clone(&in_flight);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("h2-runtime-worker-{idx}"))
                    .spawn(move || {
                        worker_loop(idx, local, injector, stealers, shutdown, in_flight);
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        ThreadPool {
            injector,
            threads,
            shutdown,
            in_flight,
            num_threads,
        }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Submit a job for asynchronous execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.injector.push(Box::new(job));
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Run a closure over `0..n` in parallel and wait for completion.
    pub fn par_for(&self, n: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        let f = Arc::new(f);
        for i in 0..n {
            let f = Arc::clone(&f);
            self.submit(move || f(i));
        }
        self.wait_idle();
    }
}

fn worker_loop(
    idx: usize,
    local: Worker<Job>,
    injector: Arc<Injector<Job>>,
    stealers: Arc<Vec<Stealer<Job>>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    in_flight: Arc<AtomicUsize>,
) {
    loop {
        // Local queue first, then the global injector, then steal from peers.
        let job = local.pop().or_else(|| {
            std::iter::repeat_with(|| {
                injector
                    .steal_batch_and_pop(&local)
                    .or_else(|| stealers.iter().enumerate().filter(|(i, _)| *i != idx).map(|(_, s)| s.steal()).collect())
            })
            .find(|s| !s.is_retry())
            .and_then(|s| s.success())
        });
        match job {
            Some(job) => {
                job();
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.wait_idle();
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Executes a [`TaskGraph`] whose tasks carry real closures, releasing each task only
/// when all of its dependencies have completed.
pub struct DagExecutor {
    pool: ThreadPool,
}

impl DagExecutor {
    /// Create an executor backed by a pool with `num_threads` workers.
    pub fn new(num_threads: usize) -> Self {
        DagExecutor {
            pool: ThreadPool::new(num_threads),
        }
    }

    /// Execute the graph.  `actions[i]` is the closure for task `i`; tasks with no
    /// action (None) are treated as zero-cost synchronization points.  Returns the
    /// order in which tasks completed (useful for tests).
    ///
    /// # Panics
    /// Panics if `actions.len() != graph.len()`.
    pub fn execute(&self, graph: &TaskGraph, actions: Vec<Option<Job>>) -> Vec<TaskId> {
        assert_eq!(actions.len(), graph.len(), "one action per task required");
        if graph.is_empty() {
            return Vec::new();
        }
        struct Shared {
            remaining: Vec<AtomicUsize>,
            actions: Vec<Mutex<Option<Job>>>,
            completion: Mutex<Vec<TaskId>>,
            dependents: Vec<Vec<TaskId>>,
            pending: AtomicUsize,
        }
        let shared = Arc::new(Shared {
            remaining: graph.iter().map(|n| AtomicUsize::new(n.deps.len())).collect(),
            actions: actions.into_iter().map(Mutex::new).collect(),
            completion: Mutex::new(Vec::with_capacity(graph.len())),
            dependents: graph.iter().map(|n| n.dependents.clone()).collect(),
            pending: AtomicUsize::new(graph.len()),
        });

        // Coordinator loop: repeatedly submit all currently-ready tasks as one
        // parallel wave.  A wave boundary only occurs when the ready set is exhausted,
        // which for the DAGs built by the solvers matches their natural level
        // structure, so no parallelism is lost while keeping the release logic free of
        // worker-side re-submission.
        let mut released = vec![false; graph.len()];
        loop {
            let ready: Vec<TaskId> = graph
                .iter()
                .filter(|n| !released[n.id.0] && shared.remaining[n.id.0].load(Ordering::SeqCst) == 0)
                .map(|n| n.id)
                .collect();
            if ready.is_empty() {
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for id in ready {
                released[id.0] = true;
                let shared = Arc::clone(&shared);
                self.pool.submit(move || {
                    let action = shared.actions[id.0].lock().take();
                    if let Some(job) = action {
                        job();
                    }
                    shared.completion.lock().push(id);
                    shared.pending.fetch_sub(1, Ordering::SeqCst);
                    for &dep in &shared.dependents[id.0] {
                        shared.remaining[dep.0].fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
            self.pool.wait_idle();
        }
        let order = shared.completion.lock().clone();
        order
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskKind;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_for_runs_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new((0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let h = Arc::clone(&hits);
        pool.par_for(100, move |i| {
            h[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn submit_and_wait_idle() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
        assert_eq!(pool.num_threads(), 2);
    }

    #[test]
    fn dag_executor_respects_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Factor, 1.0, &[]);
        let b = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let c = g.add_task(TaskKind::Solve, 1.0, &[a]);
        let d = g.add_task(TaskKind::Update, 1.0, &[b, c]);

        let log = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, log: &Arc<Mutex<Vec<usize>>>| -> Option<Job> {
            let log = Arc::clone(log);
            Some(Box::new(move || {
                log.lock().push(id);
            }))
        };
        let actions = vec![mk(0, &log), mk(1, &log), mk(2, &log), mk(3, &log)];
        let exec = DagExecutor::new(3);
        let order = exec.execute(&g, actions);
        assert_eq!(order.len(), 4);
        let seq = log.lock().clone();
        let pos = |x: usize| seq.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        let _ = (a, b, c, d);
    }

    #[test]
    fn dag_executor_handles_empty_and_none_actions() {
        let exec = DagExecutor::new(1);
        let g = TaskGraph::new();
        assert!(exec.execute(&g, vec![]).is_empty());

        let mut g = TaskGraph::new();
        let a = g.add_task(TaskKind::Other, 0.0, &[]);
        let _b = g.add_task(TaskKind::Other, 0.0, &[a]);
        let order = exec.execute(&g, vec![None, None]);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], a);
    }

    #[test]
    fn wide_dag_executes_all_tasks() {
        let mut g = TaskGraph::new();
        let root = g.add_task(TaskKind::Factor, 1.0, &[]);
        let mids: Vec<TaskId> = (0..32).map(|_| g.add_task(TaskKind::Update, 1.0, &[root])).collect();
        let _join = g.add_task(TaskKind::Other, 1.0, &mids);
        let counter = Arc::new(AtomicU64::new(0));
        let actions: Vec<Option<Job>> = (0..g.len())
            .map(|_| {
                let c = Arc::clone(&counter);
                Some(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Job)
            })
            .collect();
        let exec = DagExecutor::new(4);
        let order = exec.execute(&g, actions);
        assert_eq!(order.len(), 34);
        assert_eq!(counter.load(Ordering::SeqCst), 34);
    }
}
