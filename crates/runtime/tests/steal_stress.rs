//! Stress tests for the work-stealing pool and the critical-path-first DAG
//! executor: deep chains, wide fan-outs and diamond lattices under contention,
//! with more workers than cores so stealing and parking churn constantly.

use h2_runtime::{DagExecutor, TaskGraph, TaskId, TaskKind, ThreadPool};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Check that a completion order respects every dependency edge of the graph.
fn assert_order_respects_deps(g: &TaskGraph, order: &[TaskId]) {
    assert_eq!(
        order.len(),
        g.len(),
        "every task must complete exactly once"
    );
    let mut pos = vec![usize::MAX; g.len()];
    for (p, id) in order.iter().enumerate() {
        assert_eq!(pos[id.0], usize::MAX, "task {id:?} completed twice");
        pos[id.0] = p;
    }
    for n in g.iter() {
        for d in &n.deps {
            assert!(
                pos[d.0] < pos[n.id.0],
                "dependency {d:?} must complete before {:?}",
                n.id
            );
        }
    }
}

fn counting_actions(g: &TaskGraph, counter: &Arc<AtomicU64>) -> Vec<Option<Job>> {
    (0..g.len())
        .map(|_| {
            let c = Arc::clone(counter);
            Some(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }) as Job)
        })
        .collect()
}

#[test]
fn deep_chain_under_contention() {
    // 2000-task chain on 8 workers: at most one task is ever runnable, so the
    // run is a worst case for release/steal/park churn.
    let mut g = TaskGraph::new();
    let mut prev: Vec<TaskId> = Vec::new();
    for _ in 0..2000 {
        prev = vec![g.add_task(TaskKind::Update, 1.0, &prev)];
    }
    let exec = DagExecutor::new(8);
    let counter = Arc::new(AtomicU64::new(0));
    let order = exec.execute(&g, counting_actions(&g, &counter)).unwrap();
    assert_order_respects_deps(&g, &order);
    assert_eq!(counter.load(Ordering::Relaxed), 2000);
    for (i, id) in order.iter().enumerate() {
        assert_eq!(id.0, i, "a chain must complete strictly in order");
    }
}

#[test]
fn wide_fanout_under_contention() {
    // One root releasing 1500 independent tasks, joined by a single sink; the
    // releasing worker floods its own deque and the other 7 must steal.
    let mut g = TaskGraph::new();
    let root = g.add_task(TaskKind::Factor, 1.0, &[]);
    let mids: Vec<TaskId> = (0..1500)
        .map(|_| g.add_task(TaskKind::Update, 1.0, &[root]))
        .collect();
    let _sink = g.add_task(TaskKind::Other, 1.0, &mids);
    let exec = DagExecutor::new(8);
    let counter = Arc::new(AtomicU64::new(0));
    let order = exec.execute(&g, counting_actions(&g, &counter)).unwrap();
    assert_order_respects_deps(&g, &order);
    assert_eq!(counter.load(Ordering::Relaxed), 1502);
    let c = exec.pool().steal_counters();
    assert_eq!(c.executed, 1502);
    assert_eq!(c.executed, c.local_pops + c.injector_pops + c.steals);
}

#[test]
fn diamond_lattice_rounds_under_contention() {
    // Repeated diamond lattices (fan-out / fan-in layers) on a shared executor:
    // every round must respect all cross-layer edges and leave nothing behind.
    let exec = DagExecutor::new(6);
    for round in 0..25 {
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for w in [1usize, 16, 3, 24, 1, 9, 2] {
            prev = (0..w)
                .map(|_| g.add_task(TaskKind::Update, 1.0, &prev))
                .collect();
        }
        let counter = Arc::new(AtomicU64::new(0));
        let order = exec.execute(&g, counting_actions(&g, &counter)).unwrap();
        assert_order_respects_deps(&g, &order);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            g.len() as u64,
            "round {round}"
        );
    }
}

#[test]
fn irregular_lattice_with_random_edges() {
    // Layered graph where each task depends on a pseudo-random subset of the
    // previous layer — closer to a real elimination DAG than a pure diamond.
    let mut g = TaskGraph::new();
    let mut prev: Vec<TaskId> = Vec::new();
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _layer in 0..40 {
        let width = 1 + (next() % 12) as usize;
        let layer: Vec<TaskId> = (0..width)
            .map(|_| {
                let deps: Vec<TaskId> = prev.iter().copied().filter(|_| next() % 3 != 0).collect();
                g.add_task(TaskKind::Update, 1.0 + (next() % 5) as f64, &deps)
            })
            .collect();
        prev = layer;
    }
    let exec = DagExecutor::new(8);
    let counter = Arc::new(AtomicU64::new(0));
    let order = exec.execute(&g, counting_actions(&g, &counter)).unwrap();
    assert_order_respects_deps(&g, &order);
    assert_eq!(counter.load(Ordering::Relaxed), g.len() as u64);
}

#[test]
fn pool_survives_mixed_submit_storm() {
    // Interleaved outside submissions (injector) and worker-side submissions
    // (local deques) from many producer threads, with wait_idle in between:
    // every task must run exactly once and wait_idle must never return early.
    let pool = Arc::new(ThreadPool::new(8));
    for _round in 0..10 {
        let hits = Arc::new((0..600).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        std::thread::scope(|s| {
            for t in 0..3 {
                let pool = Arc::clone(&pool);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for i in 0..100 {
                        let idx = t * 200 + i;
                        let pool2 = Arc::clone(&pool);
                        let hits2 = Arc::clone(&hits);
                        pool.submit(move || {
                            hits2[idx].fetch_add(1, Ordering::Relaxed);
                            // Worker-side follow-up lands in the local deque.
                            let hits3 = Arc::clone(&hits2);
                            pool2.submit(move || {
                                hits3[idx + 100].fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        pool.wait_idle();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "task {i} ran a wrong number of times"
            );
        }
    }
}

#[test]
fn scoped_execution_under_contention_writes_every_slot() {
    // execute_scoped with closures borrowing a stack-allocated slot table.
    let exec = DagExecutor::new(8);
    let mut g = TaskGraph::new();
    let roots: Vec<TaskId> = (0..64)
        .map(|_| g.add_task(TaskKind::Basis, 1.0, &[]))
        .collect();
    for chunk in roots.chunks(4) {
        g.add_task(TaskKind::Factor, 2.0, chunk);
    }
    let slots: Vec<Mutex<u32>> = (0..g.len()).map(|_| Mutex::new(0)).collect();
    let actions: Vec<Option<Box<dyn FnOnce() + Send + '_>>> = (0..g.len())
        .map(|i| {
            let slot = &slots[i];
            Some(Box::new(move || {
                *slot.lock().unwrap() += 1;
            }) as Box<dyn FnOnce() + Send + '_>)
        })
        .collect();
    let order = exec.execute_scoped(&g, actions).unwrap();
    assert_order_respects_deps(&g, &order);
    for (i, slot) in slots.iter().enumerate() {
        assert_eq!(
            *slot.lock().unwrap(),
            1,
            "slot {i} written a wrong number of times"
        );
    }
}
