//! Ranks, communicators and collectives.
//!
//! A [`Universe`] runs an SPMD closure on `P` ranks (threads).  Each rank receives a
//! [`Comm`] that supports the point-to-point and collective operations the distributed
//! H²-ULV factorization needs.  Message payloads are `Vec<f64>` — everything the
//! solver communicates (basis blocks, skeleton blocks, right-hand-side segments) is a
//! flat array of doubles plus dimensions the caller encodes in-band.

use crate::counters::CommStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A message in flight.
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Shared state of one communicator: a mailbox (channel) per member rank.
struct CommShared {
    /// Sender endpoint for each member (indexed by rank within this communicator).
    senders: Vec<Sender<Message>>,
    /// Barrier/collective coordination state.
    coord: Mutex<CoordState>,
    /// Communication statistics, shared by all communicators of the universe.
    stats: Arc<CommStats>,
    /// Next communicator id for splits (shared counter).
    next_comm_id: Arc<Mutex<u64>>,
    /// Registry used to hand the per-member receivers of a split communicator to the
    /// rank that should own them.
    split_registry: Arc<Mutex<HashMap<(u64, usize), (Receiver<Message>, Arc<CommShared>)>>>,
}

/// Coordination state used by `split` (a tiny rendezvous area).
#[derive(Default)]
struct CoordState {
    /// `(color, key, rank)` submissions for the split in progress.
    split_submissions: Vec<(i64, i64, usize)>,
    /// Generation counter so consecutive splits do not interfere.
    split_generation: u64,
    /// Result for each submitting rank of the current generation:
    /// old rank -> (communicator id, new rank, new size).
    split_results: HashMap<usize, (u64, usize, usize)>,
}

/// A communicator handle owned by one rank.
pub struct Comm {
    rank: usize,
    size: usize,
    inbox: Receiver<Message>,
    shared: Arc<CommShared>,
    /// Buffer of messages received but not yet matched by tag.
    stash: Vec<Message>,
}

/// The universe spawns ranks and joins them.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks, each on its own thread, and collect the return values
    /// in rank order.
    ///
    /// # Panics
    /// Panics if any rank panics.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(size > 0, "universe needs at least one rank");
        let stats = Arc::new(CommStats::new(size));
        let comms = Self::make_world(size, Arc::clone(&stats));
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for comm in comms {
            let f = Arc::clone(&f);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mpisim-rank-{}", comm.rank))
                    .spawn(move || f(comm))
                    .unwrap_or_else(|e| panic!("failed to spawn rank: {e}")),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    }

    /// Run `f` on `size` ranks and also return the accumulated communication stats.
    pub fn run_with_stats<T, F>(size: usize, f: F) -> (Vec<T>, CommStats)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(size > 0);
        let stats = Arc::new(CommStats::new(size));
        let comms = Self::make_world(size, Arc::clone(&stats));
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for comm in comms {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || f(comm)));
        }
        let results = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        let stats = Arc::try_unwrap(stats).unwrap_or_else(|a| (*a).clone());
        (results, stats)
    }

    fn make_world(size: usize, stats: Arc<CommStats>) -> Vec<Comm> {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let shared = Arc::new(CommShared {
            senders,
            coord: Mutex::new(CoordState::default()),
            stats,
            next_comm_id: Arc::new(Mutex::new(1)),
            split_registry: Arc::new(Mutex::new(HashMap::new())),
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Comm {
                rank,
                size,
                inbox,
                shared: Arc::clone(&shared),
                stash: Vec::new(),
            })
            .collect()
    }
}

impl Comm {
    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `data` to `dest` with a message `tag`.
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) {
        assert!(dest < self.size, "send: destination {dest} out of range");
        self.shared.stats.record_send(self.rank, data.len() * 8);
        self.shared.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                data: data.to_vec(),
            })
            .unwrap_or_else(|_| panic!("mpisim: receiver hung up"));
    }

    /// Receive a message from `src` with the given `tag` (blocking, with tag matching).
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        // Check the stash first.
        if let Some(pos) = self.stash.iter().position(|m| m.src == src && m.tag == tag) {
            return self.stash.swap_remove(pos).data;
        }
        loop {
            let msg = self
                .inbox
                .recv()
                .unwrap_or_else(|_| panic!("mpisim: channel closed"));
            if msg.src == src && msg.tag == tag {
                return msg.data;
            }
            self.stash.push(msg);
        }
    }

    /// Barrier over all ranks of this communicator (dissemination algorithm).
    pub fn barrier(&mut self, tag: u64) {
        let p = self.size;
        let mut round = 1;
        while round < p {
            let dest = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            self.send(dest, tag ^ 0xba44_0000 ^ round as u64, &[]);
            let _ = self.recv(src, tag ^ 0xba44_0000 ^ round as u64);
            round <<= 1;
        }
    }

    /// Allgather: every rank contributes `data`; returns the concatenation over ranks
    /// in rank order.  Contributions may have different lengths.
    pub fn allgather(&mut self, tag: u64, data: &[f64]) -> Vec<Vec<f64>> {
        let p = self.size;
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[self.rank] = data.to_vec();
        // Simple ring exchange: p-1 rounds, each rank forwards what it has learned.
        // For the solver's purposes (tree communicators of width 2 at most levels)
        // this is plenty; the time model in `netmodel` charges the log-tree cost the
        // paper's implementation would achieve.
        for r in 0..p {
            if r == self.rank {
                for dest in 0..p {
                    if dest != self.rank {
                        self.send(dest, tag ^ (0xa11 << 32), data);
                    }
                }
            } else {
                let d = self.recv(r, tag ^ (0xa11 << 32));
                out[r] = d;
            }
        }
        out
    }

    /// Broadcast from `root`: returns the root's data on every rank.
    pub fn bcast(&mut self, tag: u64, root: usize, data: &[f64]) -> Vec<f64> {
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, tag ^ (0xbca << 32), data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root, tag ^ (0xbca << 32))
        }
    }

    /// Element-wise sum reduction to every rank (allreduce).
    pub fn allreduce_sum(&mut self, tag: u64, data: &[f64]) -> Vec<f64> {
        let parts = self.allgather(tag ^ (0x5ed << 32), data);
        let mut acc = vec![0.0; data.len()];
        for part in parts {
            assert_eq!(
                part.len(),
                data.len(),
                "allreduce_sum: length mismatch across ranks"
            );
            for (a, v) in acc.iter_mut().zip(&part) {
                *a += v;
            }
        }
        acc
    }

    /// Split the communicator by `color`; ranks with equal colors form a new
    /// communicator, ordered by `key` (ties broken by old rank).  Every rank of the
    /// parent must call `split`.
    pub fn split(&mut self, color: i64, key: i64) -> Comm {
        // Rendezvous through the shared coordination state: the last rank to arrive
        // builds all the new communicators and publishes per-member receivers in the
        // split registry.
        let my_generation;
        {
            let mut coord = self.shared.coord.lock();
            my_generation = coord.split_generation;
            coord.split_submissions.push((color, key, self.rank));
            if coord.split_submissions.len() == self.size {
                // Build the new communicators.
                let submissions = std::mem::take(&mut coord.split_submissions);
                let mut groups: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
                for (c, k, r) in submissions {
                    groups.entry(c).or_default().push((k, r));
                }
                let mut registry = self.shared.split_registry.lock();
                let mut next_id = self.shared.next_comm_id.lock();
                for (_color, mut members) in groups {
                    members.sort();
                    let comm_id = *next_id;
                    *next_id += 1;
                    let size = members.len();
                    let mut senders = Vec::with_capacity(size);
                    let mut receivers = Vec::with_capacity(size);
                    for _ in 0..size {
                        let (s, r) = unbounded();
                        senders.push(s);
                        receivers.push(r);
                    }
                    let new_shared = Arc::new(CommShared {
                        senders,
                        coord: Mutex::new(CoordState::default()),
                        stats: Arc::clone(&self.shared.stats),
                        next_comm_id: Arc::clone(&self.shared.next_comm_id),
                        split_registry: Arc::clone(&self.shared.split_registry),
                    });
                    for (new_rank, (_k, old_rank)) in members.iter().enumerate() {
                        registry.insert(
                            (comm_id, *old_rank),
                            (receivers[new_rank].clone(), Arc::clone(&new_shared)),
                        );
                        coord
                            .split_results
                            .insert(*old_rank, (comm_id, new_rank, size));
                    }
                }
                coord.split_generation += 1;
            }
        }
        // Wait for the builder to publish our entry.
        loop {
            {
                let mut coord = self.shared.coord.lock();
                if coord.split_generation > my_generation {
                    if let Some((comm_id, new_rank, new_size)) =
                        coord.split_results.get(&self.rank).copied()
                    {
                        coord.split_results.remove(&self.rank);
                        drop(coord);
                        let mut registry = self.shared.split_registry.lock();
                        let (inbox, shared) = registry
                            .remove(&(comm_id, self.rank))
                            .unwrap_or_else(|| unreachable!("split registry entry missing"));
                        return Comm {
                            rank: new_rank,
                            size: new_size,
                            inbox,
                            shared,
                            stash: Vec::new(),
                        };
                    }
                }
            }
            std::thread::yield_now();
        }
    }

    /// Access the universe-wide communication statistics.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.shared.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let results = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                vec![]
            } else {
                comm.recv(0, 7)
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let results = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]);
                comm.send(1, 2, &[2.0]);
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2);
                let a = comm.recv(0, 1);
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let results = Universe::run(4, |mut comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            let all = comm.allgather(3, &mine);
            all.into_iter().flatten().collect::<Vec<f64>>()
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn bcast_and_allreduce() {
        let results = Universe::run(3, |mut comm| {
            let data = if comm.rank() == 1 {
                vec![5.0, 6.0]
            } else {
                vec![0.0, 0.0]
            };
            let b = comm.bcast(9, 1, &data);
            let s = comm.allreduce_sum(11, &[comm.rank() as f64 + 1.0]);
            (b, s)
        });
        for (b, s) in results {
            assert_eq!(b, vec![5.0, 6.0]);
            assert_eq!(s, vec![6.0]); // 1 + 2 + 3
        }
    }

    #[test]
    fn barrier_completes() {
        let results = Universe::run(5, |mut comm| {
            comm.barrier(21);
            comm.barrier(22);
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn split_into_halves() {
        // 4 ranks split into two pairs; within each pair, exchange ranks.
        let results = Universe::run(4, |mut comm| {
            let color = (comm.rank() / 2) as i64;
            let mut sub = comm.split(color, comm.rank() as i64);
            assert_eq!(sub.size(), 2);
            let peer = 1 - sub.rank();
            sub.send(peer, 50, &[comm.rank() as f64]);
            let got = sub.recv(peer, 50);
            (comm.rank(), sub.rank(), got[0] as usize)
        });
        for (world_rank, sub_rank, peer_world_rank) in results {
            // Partner must be the other member of the same pair.
            assert_eq!(peer_world_rank / 2, world_rank / 2);
            assert_ne!(peer_world_rank, world_rank);
            assert_eq!(sub_rank, world_rank % 2);
        }
    }

    #[test]
    fn nested_splits_like_a_process_tree() {
        // 8 ranks: split in half twice, mirroring the paper's process tree.
        let results = Universe::run(8, |mut comm| {
            let c1 = (comm.rank() / 4) as i64;
            let mut half = comm.split(c1, comm.rank() as i64);
            let c2 = (half.rank() / 2) as i64;
            let mut quarter = half.split(c2, half.rank() as i64);
            let s = quarter.allreduce_sum(99, &[comm.rank() as f64]);
            (half.size(), quarter.size(), s[0])
        });
        for (rank, (hs, qs, sum)) in results.iter().enumerate() {
            assert_eq!(*hs, 4);
            assert_eq!(*qs, 2);
            // Sum of the pair {2k, 2k+1}.
            let pair_base = (rank / 2 * 2) as f64;
            assert_eq!(*sum, pair_base * 2.0 + 1.0);
        }
    }

    #[test]
    fn stats_record_traffic() {
        let (_, stats) = Universe::run_with_stats(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 100]);
            } else {
                let _ = comm.recv(0, 1);
            }
        });
        assert_eq!(stats.total_messages(), 1);
        assert_eq!(stats.total_bytes(), 800);
    }
}
