//! Ranks, communicators and collectives — fault-tolerant edition.
//!
//! A [`Universe`] runs an SPMD closure on `P` ranks (threads).  Each rank
//! receives a [`Comm`] that supports the point-to-point and collective
//! operations the distributed H²-ULV factorization needs.  Message payloads
//! are `Vec<f64>` — everything the solver communicates (basis blocks,
//! skeleton blocks, right-hand-side segments) is a flat array of doubles plus
//! dimensions the caller encodes in-band.
//!
//! Unlike the original perfect-network version, every operation here is
//! *fallible*: messages travel as checksummed frames over a pluggable
//! [`Transport`] (in-process channels or localhost TCP, see
//! [`TransportKind`]), sends are acknowledged and retried with exponential
//! backoff, receivers suppress duplicates through per-peer sequence numbers,
//! and a heartbeat thread per rank feeds a failure detector.  Every blocking
//! call runs against a deadline from [`CommConfig`] and returns a typed
//! [`CommError`] instead of hanging — a dead peer converts collectives into
//! `RankFailed` on all survivors.  Network fault injection (`H2_FAULT` specs
//! `drop_msg`/`corrupt_msg`/`delay_msg`/`dup_msg`/`kill_rank`) happens inside
//! the send path, below the reliability layer, so the retry machinery is
//! exercised by the same code paths real packet loss would take.

use crate::counters::CommStats;
use crate::error::{CommError, CommResult};
use crate::transport::{
    ChannelTransport, Frame, FrameKind, SocketTransport, Transport, TransportKind,
};
use h2_matrix::fault;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the reliable communicator.
///
/// The defaults are generous enough that clean runs never trip them; chaos
/// tests install much tighter values so failures surface in milliseconds.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// Which frame pipe carries the traffic.
    pub transport: TransportKind,
    /// Deadline for one blocking operation (`send`, `recv`, a whole
    /// collective, a `split` rendezvous).
    pub op_deadline: Duration,
    /// Gap before the first resend of an unacknowledged frame; doubles on
    /// every subsequent resend.
    pub retry_backoff: Duration,
    /// Upper bound on the resend gap once backoff has grown.
    pub backoff_cap: Duration,
    /// Maximum number of *resends* per message (the first transmission is
    /// free).  After exhaustion the sender keeps listening for a late ack
    /// until the operation deadline.
    pub max_retries: u32,
    /// Period of the per-rank heartbeat beacon.
    pub heartbeat_interval: Duration,
    /// Silence threshold after which a peer is declared dead.
    pub failure_timeout: Duration,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            transport: TransportKind::Channel,
            op_deadline: Duration::from_secs(10),
            retry_backoff: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(200),
            max_retries: 10,
            heartbeat_interval: Duration::from_millis(25),
            failure_timeout: Duration::from_secs(2),
        }
    }
}

impl CommConfig {
    /// Defaults with the transport (`H2_TRANSPORT=channel|socket`) and the
    /// operation deadline (`H2_COMM_DEADLINE_MS`) read from the environment.
    pub fn from_env() -> Self {
        let mut cfg = CommConfig {
            transport: TransportKind::from_env(),
            ..CommConfig::default()
        };
        if let Ok(ms) = std::env::var("H2_COMM_DEADLINE_MS") {
            match ms.parse::<u64>() {
                Ok(ms) if ms > 0 => cfg.op_deadline = Duration::from_millis(ms),
                _ => eprintln!("H2_COMM_DEADLINE_MS ignored: '{ms}' is not a positive integer"),
            }
        }
        cfg
    }
}

// ------------------------------------------------------------- endpoint

/// The per-process reliable layer: one endpoint per world rank, shared by the
/// world communicator and every sub-communicator split off it (frames carry a
/// `comm_id`, so one frame pipe multiplexes all communicators).
struct Endpoint {
    /// World rank of this endpoint.
    rank: usize,
    /// World size.
    size: usize,
    cfg: CommConfig,
    transport: Arc<dyn Transport>,
    stats: Arc<CommStats>,
    /// Set when a `kill_rank` fault fires; also stops the heartbeat thread.
    killed: Arc<AtomicBool>,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Acked sequence numbers per peer, awaiting pickup by `send_reliable`.
    acked: Vec<HashSet<u64>>,
    /// Delivered sequence numbers per peer (duplicate suppression).
    delivered: Vec<HashSet<u64>>,
    /// Received-but-unclaimed payloads, indexed by `(comm_id, src, tag)` so
    /// matching is a map lookup however many tags are outstanding.
    stash: HashMap<(u64, usize, u64), VecDeque<Vec<f64>>>,
    /// Last time we heard anything (data, ack, heartbeat) from each peer.
    last_heard: Vec<Instant>,
    /// Peers declared dead (heartbeat silence or closed connection).
    dead: Vec<bool>,
    /// Cumulative corrupt-frame count per claimed source, used to convert a
    /// receive timeout into the more precise `CorruptFrame` error.
    corrupt_from: Vec<u64>,
    /// Public communicator operations performed (the `kill_rank` ordinal).
    op_count: u64,
    /// Injection-site counter for deterministic fault rolls.
    fault_seq: u64,
}

/// How long one pump waits when the caller is otherwise idle.  Frame arrival
/// wakes the pump immediately; this only bounds deadline/resend latency.
const PUMP_TICK: Duration = Duration::from_millis(5);

impl Endpoint {
    /// Count one public communicator operation and fire a pending
    /// `kill_rank` fault.  A killed rank fails every subsequent operation
    /// with `RankFailed` against itself and stops acking and heartbeating.
    fn note_op(&mut self, op: &'static str) -> CommResult<()> {
        if self.killed.load(Ordering::Relaxed) {
            return Err(CommError::RankFailed {
                rank: self.rank,
                failed: self.rank,
                op,
            });
        }
        let ordinal = self.op_count;
        self.op_count += 1;
        if let Some((victim, after_ops)) = fault::kill_rank_plan() {
            if victim == self.rank && ordinal >= after_ops {
                self.killed.store(true, Ordering::Relaxed);
                self.stats.record_rank_failure(self.rank);
                return Err(CommError::RankFailed {
                    rank: self.rank,
                    failed: self.rank,
                    op,
                });
            }
        }
        Ok(())
    }

    /// Process at most one incoming frame, waiting up to `wait` for it.
    fn pump(&mut self, wait: Duration) -> CommResult<()> {
        let frame = match self.transport.recv_frame(wait)? {
            Some(f) => f,
            None => return Ok(()),
        };
        let src = frame.src;
        if src >= self.size {
            return Ok(()); // garbage source rank: drop
        }
        match frame.kind {
            FrameKind::Heartbeat => {
                self.last_heard[src] = Instant::now();
            }
            FrameKind::PeerClosed => {
                if src != self.rank && !self.dead[src] {
                    self.dead[src] = true;
                    self.stats.record_rank_failure(self.rank);
                }
            }
            FrameKind::Ack => {
                self.last_heard[src] = Instant::now();
                self.acked[src].insert(frame.seq);
            }
            FrameKind::Data => {
                self.last_heard[src] = Instant::now();
                if !frame.checksum_ok() {
                    // Drop without acking: the sender's retry will carry a
                    // clean copy (or the sender times out).
                    self.stats.record_corrupt_frame(self.rank);
                    self.corrupt_from[src] += 1;
                    return Ok(());
                }
                // Ack duplicates too — the ack of the original may be the
                // thing that got lost.
                let _ = self
                    .transport
                    .send_frame(src, &Frame::ack(self.rank, frame.seq));
                if !self.delivered[src].insert(frame.seq) {
                    self.stats.record_duplicate(self.rank);
                    return Ok(());
                }
                self.stash
                    .entry((frame.comm_id, src, frame.tag))
                    .or_default()
                    .push_back(frame.payload);
            }
        }
        Ok(())
    }

    /// Fail if `peer` is known dead or has been silent past the failure
    /// timeout (heartbeats arrive through `pump`).
    fn check_peer_alive(&mut self, peer: usize, op: &'static str) -> CommResult<()> {
        if peer == self.rank {
            return Ok(());
        }
        if !self.dead[peer] && self.last_heard[peer].elapsed() > self.cfg.failure_timeout {
            self.dead[peer] = true;
            self.stats.record_rank_failure(self.rank);
        }
        if self.dead[peer] {
            return Err(CommError::RankFailed {
                rank: self.rank,
                failed: peer,
                op,
            });
        }
        Ok(())
    }

    /// Push one physical copy of a data frame through the transport, applying
    /// any active network fault plan at this injection site.  Control frames
    /// (acks, heartbeats) never pass through here and are never faulted.
    fn send_data_frame(&mut self, dest: usize, frame: &Frame) -> CommResult<()> {
        let site = self.fault_seq ^ ((self.rank as u64) << 48);
        self.fault_seq += 1;
        if let Some(rate) = fault::drop_msg_rate() {
            if fault::roll(rate, site) {
                return Ok(()); // swallowed by the "network"
            }
        }
        if let Some(ms) = fault::delay_msg_ms() {
            std::thread::sleep(Duration::from_millis(ms));
        }
        let mut wire = frame.clone();
        if let Some(rate) = fault::corrupt_msg_rate() {
            if fault::roll(rate, site ^ 0x00c0_ffee) {
                wire.checksum ^= 0x5a5a_5a5a_5a5a_5a5a;
            }
        }
        self.transport.send_frame(dest, &wire)?;
        if let Some(rate) = fault::dup_msg_rate() {
            if fault::roll(rate, site ^ 0xd0d0) {
                self.transport.send_frame(dest, &wire)?;
            }
        }
        Ok(())
    }

    /// Reliable send: transmit, await the ack, resend with exponential
    /// backoff, convert exhaustion into `Timeout` and dead peers into
    /// `RankFailed`.  Self-sends go straight to the stash.
    fn send_reliable(
        &mut self,
        comm_id: u64,
        dest: usize,
        tag: u64,
        data: &[f64],
        op: &'static str,
        deadline: Instant,
    ) -> CommResult<()> {
        self.stats.record_send(self.rank, data.len() * 8);
        if dest == self.rank {
            self.stash
                .entry((comm_id, dest, tag))
                .or_default()
                .push_back(data.to_vec());
            return Ok(());
        }
        self.check_peer_alive(dest, op)?;
        let seq = self.next_seq[dest];
        self.next_seq[dest] += 1;
        let frame = Frame::data(self.rank, comm_id, tag, seq, data.to_vec());
        let start = Instant::now();
        self.send_data_frame(dest, &frame)?;
        let mut resends: u32 = 0;
        let mut gap = self.cfg.retry_backoff;
        let mut next_resend = start + gap;
        loop {
            if self.acked[dest].remove(&seq) {
                return Ok(());
            }
            self.check_peer_alive(dest, op)?;
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_timeout(self.rank);
                return Err(CommError::Timeout {
                    op,
                    rank: self.rank,
                    peer: Some(dest),
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            if now >= next_resend {
                if resends < self.cfg.max_retries {
                    resends += 1;
                    self.stats.record_retry(self.rank);
                    self.send_data_frame(dest, &frame)?;
                    gap = (gap * 2).min(self.cfg.backoff_cap);
                    next_resend = now + gap;
                } else {
                    next_resend = deadline; // out of resends: just listen
                }
            }
            let wait = deadline
                .min(next_resend)
                .saturating_duration_since(Instant::now())
                .min(PUMP_TICK)
                .max(Duration::from_micros(100));
            self.pump(wait)?;
        }
    }

    /// Blocking tag-matched receive against a deadline.  The stash is indexed
    /// by `(comm_id, src, tag)`, so matching never scans unrelated messages.
    fn recv_matched(
        &mut self,
        comm_id: u64,
        src: usize,
        tag: u64,
        op: &'static str,
        deadline: Instant,
    ) -> CommResult<Vec<f64>> {
        let start = Instant::now();
        let corrupt_before = self.corrupt_from[src];
        loop {
            if let Some(queue) = self.stash.get_mut(&(comm_id, src, tag)) {
                if let Some(data) = queue.pop_front() {
                    if queue.is_empty() {
                        self.stash.remove(&(comm_id, src, tag)); // keep the index bounded
                    }
                    return Ok(data);
                }
            }
            self.check_peer_alive(src, op)?;
            let now = Instant::now();
            if now >= deadline {
                self.stats.record_timeout(self.rank);
                // Observed corruption from this peer makes the diagnosis
                // sharper than a generic timeout.
                if self.corrupt_from[src] > corrupt_before {
                    return Err(CommError::CorruptFrame {
                        rank: self.rank,
                        src,
                        tag,
                    });
                }
                return Err(CommError::Timeout {
                    op,
                    rank: self.rank,
                    peer: Some(src),
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            let wait = deadline
                .saturating_duration_since(now)
                .min(PUMP_TICK)
                .max(Duration::from_micros(100));
            self.pump(wait)?;
        }
    }
}

// ------------------------------------------------------ split rendezvous

/// What a completed split hands each member.
struct SplitOutcome {
    comm_id: u64,
    rank: usize,
    /// World ranks of the new communicator, indexed by new rank.
    members: Vec<usize>,
    coord: Arc<SplitCoord>,
}

/// Shared-memory rendezvous for `split`.  Pure bookkeeping: sub-communicators
/// reuse the parent's endpoint, so a split only has to agree on membership
/// and hand out a fresh `comm_id` and coordination area.
#[derive(Default)]
struct SplitCoord {
    state: Mutex<SplitState>,
}

#[derive(Default)]
struct SplitState {
    /// Completed split generations on this communicator.
    generation: u64,
    /// `(color, key, rank)` submissions of the in-flight generation.
    submissions: Vec<(i64, i64, usize)>,
    /// Outcome per parent rank, filled by the last submitter.
    results: HashMap<usize, SplitOutcome>,
}

impl SplitCoord {
    /// Record one rank's `(color, key)` submission; the last arrival builds
    /// all the new communicators.  Returns the generation submitted into.
    /// A rank submitting twice in one generation is a protocol violation.
    fn submit(
        &self,
        color: i64,
        key: i64,
        rank: usize,
        parent_members: &[usize],
        next_comm_id: &AtomicU64,
    ) -> CommResult<u64> {
        let mut st = self.state.lock();
        if st.submissions.iter().any(|&(_, _, r)| r == rank) {
            return Err(CommError::Protocol {
                rank: parent_members[rank],
                detail: format!(
                    "split: rank {rank} submitted twice in generation {}",
                    st.generation
                ),
            });
        }
        let generation = st.generation;
        st.submissions.push((color, key, rank));
        if st.submissions.len() == parent_members.len() {
            let submissions = std::mem::take(&mut st.submissions);
            let mut groups: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
            for (c, k, r) in submissions {
                groups.entry(c).or_default().push((k, r));
            }
            for (_color, mut members) in groups {
                members.sort(); // by key, ties broken by old rank
                let comm_id = next_comm_id.fetch_add(1, Ordering::Relaxed);
                let world: Vec<usize> = members.iter().map(|&(_k, r)| parent_members[r]).collect();
                let coord = Arc::new(SplitCoord::default());
                for (new_rank, &(_k, old_rank)) in members.iter().enumerate() {
                    st.results.insert(
                        old_rank,
                        SplitOutcome {
                            comm_id,
                            rank: new_rank,
                            members: world.clone(),
                            coord: Arc::clone(&coord),
                        },
                    );
                }
            }
            st.generation += 1;
        }
        Ok(generation)
    }

    /// Collect this rank's outcome once the generation has completed.
    fn try_take(&self, generation: u64, rank: usize) -> Option<SplitOutcome> {
        let mut st = self.state.lock();
        if st.generation > generation {
            st.results.remove(&rank)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------- comm

/// A communicator handle owned by one rank.
pub struct Comm {
    /// Identity of this communicator on the shared endpoint (world = 0).
    comm_id: u64,
    /// This rank's index within the communicator.
    rank: usize,
    /// World ranks of the members, indexed by communicator rank.
    members: Vec<usize>,
    /// The per-process reliable layer, shared with every sibling communicator.
    endpoint: Arc<Mutex<Endpoint>>,
    coord: Arc<SplitCoord>,
    next_comm_id: Arc<AtomicU64>,
    stats: Arc<CommStats>,
    cfg: CommConfig,
}

impl Comm {
    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index in the world communicator (error reports use it).
    pub fn world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// The configuration this universe runs under.
    pub fn config(&self) -> &CommConfig {
        &self.cfg
    }

    fn member(&self, r: usize, op: &'static str) -> CommResult<usize> {
        self.members
            .get(r)
            .copied()
            .ok_or_else(|| CommError::Protocol {
                rank: self.world_rank(),
                detail: format!(
                    "{op}: rank {r} out of range for size {}",
                    self.members.len()
                ),
            })
    }

    /// Send `data` to `dest` with a message `tag`.
    ///
    /// Blocks until the receiver has acknowledged the (checksummed) frame,
    /// retrying lost copies, or until the operation deadline.
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) -> CommResult<()> {
        let dest_world = self.member(dest, "send")?;
        let mut ep = self.endpoint.lock();
        ep.note_op("send")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        ep.send_reliable(self.comm_id, dest_world, tag, data, "send", deadline)
    }

    /// Receive a message from `src` with the given `tag` (blocking, with tag
    /// matching against a deadline).
    pub fn recv(&mut self, src: usize, tag: u64) -> CommResult<Vec<f64>> {
        let src_world = self.member(src, "recv")?;
        let mut ep = self.endpoint.lock();
        ep.note_op("recv")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        ep.recv_matched(self.comm_id, src_world, tag, "recv", deadline)
    }

    /// Barrier over all ranks of this communicator (dissemination algorithm).
    pub fn barrier(&mut self, tag: u64) -> CommResult<()> {
        let mut ep = self.endpoint.lock();
        ep.note_op("barrier")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        let p = self.size();
        let mut round = 1usize;
        while round < p {
            let dest = self.members[(self.rank + round) % p];
            let src = self.members[(self.rank + p - round) % p];
            let t = tag ^ 0xba44_0000 ^ round as u64;
            ep.send_reliable(self.comm_id, dest, t, &[], "barrier", deadline)?;
            ep.recv_matched(self.comm_id, src, t, "barrier", deadline)?;
            round <<= 1;
        }
        Ok(())
    }

    /// Allgather: every rank contributes `data`; returns the contributions in
    /// rank order.  Contributions may have different lengths.
    pub fn allgather(&mut self, tag: u64, data: &[f64]) -> CommResult<Vec<Vec<f64>>> {
        let mut ep = self.endpoint.lock();
        ep.note_op("allgather")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        self.allgather_inner(&mut ep, tag, data, deadline)
    }

    /// Allgather body shared with `allreduce_sum` (which must count as one
    /// operation for the `kill_rank` ordinal).
    fn allgather_inner(
        &self,
        ep: &mut Endpoint,
        tag: u64,
        data: &[f64],
        deadline: Instant,
    ) -> CommResult<Vec<Vec<f64>>> {
        let p = self.size();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[self.rank] = data.to_vec();
        // Simple ring exchange: p-1 rounds, each rank forwards what it has
        // learned.  For the solver's purposes (tree communicators of width 2
        // at most levels) this is plenty; the time model in `netmodel`
        // charges the log-tree cost the paper's implementation would achieve.
        let t = tag ^ (0xa11 << 32);
        for r in 0..p {
            if r == self.rank {
                for dest in 0..p {
                    if dest != self.rank {
                        ep.send_reliable(
                            self.comm_id,
                            self.members[dest],
                            t,
                            data,
                            "allgather",
                            deadline,
                        )?;
                    }
                }
            } else {
                out[r] =
                    ep.recv_matched(self.comm_id, self.members[r], t, "allgather", deadline)?;
            }
        }
        Ok(out)
    }

    /// Broadcast from `root`: returns the root's data on every rank.
    pub fn bcast(&mut self, tag: u64, root: usize, data: &[f64]) -> CommResult<Vec<f64>> {
        let root_world = self.member(root, "bcast")?;
        let mut ep = self.endpoint.lock();
        ep.note_op("bcast")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        let t = tag ^ (0xbca << 32);
        if self.rank == root {
            for dest in 0..self.size() {
                if dest != root {
                    ep.send_reliable(self.comm_id, self.members[dest], t, data, "bcast", deadline)?;
                }
            }
            Ok(data.to_vec())
        } else {
            ep.recv_matched(self.comm_id, root_world, t, "bcast", deadline)
        }
    }

    /// Element-wise sum reduction to every rank (allreduce).
    pub fn allreduce_sum(&mut self, tag: u64, data: &[f64]) -> CommResult<Vec<f64>> {
        let mut ep = self.endpoint.lock();
        ep.note_op("allreduce_sum")?;
        let deadline = Instant::now() + self.cfg.op_deadline;
        let parts = self.allgather_inner(&mut ep, tag ^ (0x5ed << 32), data, deadline)?;
        let mut acc = vec![0.0; data.len()];
        for (r, part) in parts.iter().enumerate() {
            if part.len() != data.len() {
                return Err(CommError::Protocol {
                    rank: self.world_rank(),
                    detail: format!(
                        "allreduce_sum: rank {r} contributed {} values, this rank {}",
                        part.len(),
                        data.len()
                    ),
                });
            }
            for (a, v) in acc.iter_mut().zip(part) {
                *a += v;
            }
        }
        Ok(acc)
    }

    /// Split the communicator by `color`; ranks with equal colors form a new
    /// communicator, ordered by `key` (ties broken by old rank).  Every rank
    /// of the parent must call `split` exactly once; a second submission in
    /// the same generation is rejected with a `Protocol` error, and a dead or
    /// absent member converts the rendezvous into `RankFailed`/`Timeout`.
    pub fn split(&mut self, color: i64, key: i64) -> CommResult<Comm> {
        {
            let mut ep = self.endpoint.lock();
            ep.note_op("split")?;
        }
        let start = Instant::now();
        let deadline = start + self.cfg.op_deadline;
        let my_generation =
            self.coord
                .submit(color, key, self.rank, &self.members, &self.next_comm_id)?;
        loop {
            if let Some(out) = self.coord.try_take(my_generation, self.rank) {
                return Ok(Comm {
                    comm_id: out.comm_id,
                    rank: out.rank,
                    members: out.members,
                    endpoint: Arc::clone(&self.endpoint),
                    coord: out.coord,
                    next_comm_id: Arc::clone(&self.next_comm_id),
                    stats: Arc::clone(&self.stats),
                    cfg: self.cfg.clone(),
                });
            }
            {
                let mut ep = self.endpoint.lock();
                for &m in &self.members {
                    ep.check_peer_alive(m, "split")?;
                }
                // Keep acks and heartbeats flowing while we wait.
                ep.pump(Duration::from_millis(1))?;
            }
            if Instant::now() >= deadline {
                self.stats.record_timeout(self.world_rank());
                return Err(CommError::Timeout {
                    op: "split",
                    rank: self.world_rank(),
                    peer: None,
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
        }
    }

    /// Access the universe-wide communication statistics.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }
}

// ------------------------------------------------------------- universe

/// The universe spawns ranks (plus one heartbeat thread each) and joins them.
pub struct Universe;

impl Universe {
    /// Run `f` on `size` ranks, each on its own thread, and collect the
    /// return values in rank order.  Configuration comes from the environment
    /// (`H2_TRANSPORT`, `H2_COMM_DEADLINE_MS`).
    ///
    /// # Panics
    /// Panics if any rank panics.
    pub fn run<T, F>(size: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_config(size, &CommConfig::from_env(), f)
    }

    /// Run `f` on `size` ranks and also return the accumulated communication
    /// stats.
    pub fn run_with_stats<T, F>(size: usize, f: F) -> (Vec<T>, CommStats)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_config_with_stats(size, &CommConfig::from_env(), f)
    }

    /// Run `f` on `size` ranks under an explicit configuration.
    pub fn run_config<T, F>(size: usize, cfg: &CommConfig, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        Self::run_config_with_stats(size, cfg, f).0
    }

    /// Run `f` on `size` ranks under an explicit configuration and return the
    /// accumulated communication stats alongside the results.
    pub fn run_config_with_stats<T, F>(size: usize, cfg: &CommConfig, f: F) -> (Vec<T>, CommStats)
    where
        T: Send + 'static,
        F: Fn(Comm) -> T + Send + Sync + 'static,
    {
        assert!(size > 0, "universe needs at least one rank");
        let stats = Arc::new(CommStats::new(size));
        let transports: Vec<Arc<dyn Transport>> = match cfg.transport {
            TransportKind::Channel => ChannelTransport::world(size)
                .into_iter()
                .map(|t| Arc::new(t) as Arc<dyn Transport>)
                .collect(),
            TransportKind::Socket => match SocketTransport::world(size) {
                Ok(ts) => ts
                    .into_iter()
                    .map(|t| Arc::new(t) as Arc<dyn Transport>)
                    .collect(),
                Err(e) => panic!("mpisim: failed to build localhost socket mesh: {e}"),
            },
        };
        let stop = Arc::new(AtomicBool::new(false));
        let next_comm_id = Arc::new(AtomicU64::new(1));
        let world_coord = Arc::new(SplitCoord::default());
        let world_members: Vec<usize> = (0..size).collect();
        let birth = Instant::now();
        let mut heartbeats = Vec::with_capacity(size);
        let mut comms = Vec::with_capacity(size);
        for (rank, transport) in transports.into_iter().enumerate() {
            let killed = Arc::new(AtomicBool::new(false));
            {
                let transport = Arc::clone(&transport);
                let stop = Arc::clone(&stop);
                let killed = Arc::clone(&killed);
                let interval = cfg.heartbeat_interval;
                heartbeats.push(
                    std::thread::Builder::new()
                        .name(format!("mpisim-hb-{rank}"))
                        .spawn(move || {
                            while !stop.load(Ordering::Relaxed) && !killed.load(Ordering::Relaxed) {
                                for peer in 0..size {
                                    if peer != rank {
                                        let _ = transport.send_frame(peer, &Frame::heartbeat(rank));
                                    }
                                }
                                std::thread::sleep(interval);
                            }
                        })
                        .unwrap_or_else(|e| panic!("failed to spawn heartbeat thread: {e}")),
                );
            }
            let endpoint = Endpoint {
                rank,
                size,
                cfg: cfg.clone(),
                transport,
                stats: Arc::clone(&stats),
                killed,
                next_seq: vec![0; size],
                acked: (0..size).map(|_| HashSet::new()).collect(),
                delivered: (0..size).map(|_| HashSet::new()).collect(),
                stash: HashMap::new(),
                last_heard: vec![birth; size],
                dead: vec![false; size],
                corrupt_from: vec![0; size],
                op_count: 0,
                fault_seq: 0,
            };
            comms.push(Comm {
                comm_id: 0,
                rank,
                members: world_members.clone(),
                endpoint: Arc::new(Mutex::new(endpoint)),
                coord: Arc::clone(&world_coord),
                next_comm_id: Arc::clone(&next_comm_id),
                stats: Arc::clone(&stats),
                cfg: cfg.clone(),
            });
        }
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for comm in comms {
            let f = Arc::clone(&f);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mpisim-rank-{}", comm.rank))
                    .spawn(move || f(comm))
                    .unwrap_or_else(|e| panic!("failed to spawn rank: {e}")),
            );
        }
        let results: Vec<T> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect();
        stop.store(true, Ordering::Relaxed);
        for h in heartbeats {
            let _ = h.join();
        }
        let stats = Arc::try_unwrap(stats).unwrap_or_else(|a| (*a).clone());
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let results = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]).unwrap();
                vec![]
            } else {
                comm.recv(0, 7).unwrap()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let results = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]).unwrap();
                comm.send(1, 2, &[2.0]).unwrap();
                0.0
            } else {
                // Receive in the opposite order of sending.
                let b = comm.recv(0, 2).unwrap();
                let a = comm.recv(0, 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn tag_matching_with_many_outstanding_tags() {
        // Regression for the tag-matching index: 256 messages arrive before
        // the receiver asks for any of them, then are drained in reverse
        // order.  The old linear stash scan made this quadratic; the indexed
        // stash makes each match a map lookup either way, and every message
        // must still land on its exact tag.
        const N: u64 = 256;
        let results = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                for t in 0..N {
                    comm.send(1, t, &[t as f64 + 0.5]).unwrap();
                }
                // Wait for the receiver to finish draining before exiting.
                comm.recv(1, 999_999).unwrap();
                0.0
            } else {
                // Let every send complete (acks flow while we sleep because
                // the sender pumps; give deliveries a moment to queue up).
                std::thread::sleep(Duration::from_millis(50));
                let mut sum = 0.0;
                for t in (0..N).rev() {
                    let v = comm.recv(0, t).unwrap();
                    assert_eq!(v, vec![t as f64 + 0.5], "tag {t} mismatched");
                    sum += v[0];
                }
                comm.send(0, 999_999, &[]).unwrap();
                sum
            }
        });
        let expected: f64 = (0..N).map(|t| t as f64 + 0.5).sum();
        assert_eq!(results[1], expected);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let results = Universe::run(4, |mut comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            let all = comm.allgather(3, &mine).unwrap();
            all.into_iter().flatten().collect::<Vec<f64>>()
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn bcast_and_allreduce() {
        let results = Universe::run(3, |mut comm| {
            let data = if comm.rank() == 1 {
                vec![5.0, 6.0]
            } else {
                vec![0.0, 0.0]
            };
            let b = comm.bcast(9, 1, &data).unwrap();
            let s = comm.allreduce_sum(11, &[comm.rank() as f64 + 1.0]).unwrap();
            (b, s)
        });
        for (b, s) in results {
            assert_eq!(b, vec![5.0, 6.0]);
            assert_eq!(s, vec![6.0]); // 1 + 2 + 3
        }
    }

    #[test]
    fn barrier_completes() {
        let results = Universe::run(5, |mut comm| {
            comm.barrier(21).unwrap();
            comm.barrier(22).unwrap();
            comm.rank()
        });
        assert_eq!(results, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn split_into_halves() {
        // 4 ranks split into two pairs; within each pair, exchange ranks.
        let results = Universe::run(4, |mut comm| {
            let color = (comm.rank() / 2) as i64;
            let mut sub = comm.split(color, comm.rank() as i64).unwrap();
            assert_eq!(sub.size(), 2);
            let peer = 1 - sub.rank();
            sub.send(peer, 50, &[comm.rank() as f64]).unwrap();
            let got = sub.recv(peer, 50).unwrap();
            (comm.rank(), sub.rank(), got[0] as usize)
        });
        for (world_rank, sub_rank, peer_world_rank) in results {
            // Partner must be the other member of the same pair.
            assert_eq!(peer_world_rank / 2, world_rank / 2);
            assert_ne!(peer_world_rank, world_rank);
            assert_eq!(sub_rank, world_rank % 2);
        }
    }

    #[test]
    fn nested_splits_like_a_process_tree() {
        // 8 ranks: split in half twice, mirroring the paper's process tree.
        let results = Universe::run(8, |mut comm| {
            let c1 = (comm.rank() / 4) as i64;
            let mut half = comm.split(c1, comm.rank() as i64).unwrap();
            let c2 = (half.rank() / 2) as i64;
            let mut quarter = half.split(c2, half.rank() as i64).unwrap();
            let s = quarter.allreduce_sum(99, &[comm.rank() as f64]).unwrap();
            (half.size(), quarter.size(), s[0])
        });
        for (rank, (hs, qs, sum)) in results.iter().enumerate() {
            assert_eq!(*hs, 4);
            assert_eq!(*qs, 2);
            // Sum of the pair {2k, 2k+1}.
            let pair_base = (rank / 2 * 2) as f64;
            assert_eq!(*sum, pair_base * 2.0 + 1.0);
        }
    }

    #[test]
    fn split_rejects_double_submission_in_one_generation() {
        // The rendezvous itself must reject a rank submitting twice before
        // the generation completes — exercised directly on the coordination
        // state, since a well-typed `Comm` cannot express the race.
        let coord = SplitCoord::default();
        let members = [0usize, 1, 2];
        let ids = AtomicU64::new(1);
        assert!(coord.submit(0, 0, 1, &members, &ids).is_ok());
        match coord.submit(0, 0, 1, &members, &ids) {
            Err(CommError::Protocol { rank, detail }) => {
                assert_eq!(rank, 1);
                assert!(detail.contains("twice"), "detail: {detail}");
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
        // The generation still completes once the remaining ranks arrive.
        assert!(coord.submit(0, 0, 0, &members, &ids).is_ok());
        let gen = coord.submit(1, 0, 2, &members, &ids).unwrap();
        assert!(coord.try_take(gen, 2).is_some());
        assert!(coord.try_take(gen, 0).is_some());
        assert!(coord.try_take(gen, 1).is_some());
    }

    #[test]
    fn stats_record_traffic() {
        let (_, stats) = Universe::run_with_stats(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0.0; 100]).unwrap();
            } else {
                let _ = comm.recv(0, 1).unwrap();
            }
        });
        assert_eq!(stats.total_messages(), 1);
        assert_eq!(stats.total_bytes(), 800);
    }

    #[test]
    fn socket_transport_runs_the_same_collectives() {
        let cfg = CommConfig {
            transport: TransportKind::Socket,
            ..CommConfig::default()
        };
        let results = Universe::run_config(4, &cfg, |mut comm| {
            let mine = vec![comm.rank() as f64 + 0.25];
            let all = comm.allgather(3, &mine).unwrap();
            comm.barrier(5).unwrap();
            let sum = comm.allreduce_sum(7, &[comm.rank() as f64]).unwrap();
            (all.into_iter().flatten().collect::<Vec<f64>>(), sum[0])
        });
        for (all, sum) in results {
            assert_eq!(all, vec![0.25, 1.25, 2.25, 3.25]);
            assert_eq!(sum, 6.0);
        }
    }

    #[test]
    fn recv_times_out_with_typed_error() {
        let cfg = CommConfig {
            op_deadline: Duration::from_millis(100),
            ..CommConfig::default()
        };
        let results = Universe::run_config(2, &cfg, |mut comm| {
            if comm.rank() == 0 {
                // Never send what rank 1 waits for.
                Ok(vec![])
            } else {
                comm.recv(0, 42)
            }
        });
        match &results[1] {
            Err(CommError::Timeout { op, rank, peer, .. }) => {
                assert_eq!(*op, "recv");
                assert_eq!(*rank, 1);
                assert_eq!(*peer, Some(0));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
