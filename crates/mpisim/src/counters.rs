//! Communication accounting.
//!
//! Every logical `send` in the universe records its payload size here (resent
//! copies of the same message are counted under `retries`, not as new
//! messages).  The distributed benchmark (Fig. 16) feeds these volumes into
//! the network time model instead of measuring wall-clock communication,
//! because all ranks share one physical core in the reproduction environment.
//! The robustness counters (retries, timeouts, corrupt frames, duplicates,
//! rank failures) feed the `robustness` block of `BENCH_factor.json` and the
//! chaos suite's assertions that each injected fault class was actually hit.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rank communication statistics.
#[derive(Debug)]
pub struct CommStats {
    bytes_sent: Vec<AtomicU64>,
    messages_sent: Vec<AtomicU64>,
    /// Resends of unacknowledged frames.
    retries: Vec<AtomicU64>,
    /// Operations that missed their deadline.
    timeouts: Vec<AtomicU64>,
    /// Frames received with a checksum mismatch (dropped, not delivered).
    corrupt_frames: Vec<AtomicU64>,
    /// Frames suppressed by sequence-number deduplication.
    duplicates: Vec<AtomicU64>,
    /// Peer (or self, under `kill_rank`) failures observed by this rank.
    rank_failures: Vec<AtomicU64>,
}

fn clone_counters(v: &[AtomicU64]) -> Vec<AtomicU64> {
    v.iter()
        .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
        .collect()
}

impl Clone for CommStats {
    fn clone(&self) -> Self {
        CommStats {
            bytes_sent: clone_counters(&self.bytes_sent),
            messages_sent: clone_counters(&self.messages_sent),
            retries: clone_counters(&self.retries),
            timeouts: clone_counters(&self.timeouts),
            corrupt_frames: clone_counters(&self.corrupt_frames),
            duplicates: clone_counters(&self.duplicates),
            rank_failures: clone_counters(&self.rank_failures),
        }
    }
}

fn total(v: &[AtomicU64]) -> u64 {
    v.iter().map(|a| a.load(Ordering::Relaxed)).sum()
}

impl CommStats {
    /// Create counters for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        let zeros = || (0..ranks).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        CommStats {
            bytes_sent: zeros(),
            messages_sent: zeros(),
            retries: zeros(),
            timeouts: zeros(),
            corrupt_frames: zeros(),
            duplicates: zeros(),
            rank_failures: zeros(),
        }
    }

    /// Record a send of `bytes` bytes from `rank`.
    pub fn record_send(&self, rank: usize, bytes: usize) {
        self.bytes_sent[rank].fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_sent[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one resend of an unacknowledged frame by `rank`.
    pub fn record_retry(&self, rank: usize) {
        self.retries[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one missed operation deadline on `rank`.
    pub fn record_timeout(&self, rank: usize) {
        self.timeouts[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one checksum-mismatched frame observed by `rank`.
    pub fn record_corrupt_frame(&self, rank: usize) {
        self.corrupt_frames[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duplicate frame suppressed by `rank`.
    pub fn record_duplicate(&self, rank: usize) {
        self.duplicates[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rank failure observed by `rank`.
    pub fn record_rank_failure(&self, rank: usize) {
        self.rank_failures[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of ranks covered.
    pub fn ranks(&self) -> usize {
        self.bytes_sent.len()
    }

    /// Bytes sent by one rank.
    pub fn bytes_from(&self, rank: usize) -> u64 {
        self.bytes_sent[rank].load(Ordering::Relaxed)
    }

    /// Messages sent by one rank.
    pub fn messages_from(&self, rank: usize) -> u64 {
        self.messages_sent[rank].load(Ordering::Relaxed)
    }

    /// Frame resends performed by one rank.
    pub fn retries_from(&self, rank: usize) -> u64 {
        self.retries[rank].load(Ordering::Relaxed)
    }

    /// Deadline misses on one rank.
    pub fn timeouts_from(&self, rank: usize) -> u64 {
        self.timeouts[rank].load(Ordering::Relaxed)
    }

    /// Corrupt frames observed by one rank.
    pub fn corrupt_frames_from(&self, rank: usize) -> u64 {
        self.corrupt_frames[rank].load(Ordering::Relaxed)
    }

    /// Duplicate frames suppressed by one rank.
    pub fn duplicates_from(&self, rank: usize) -> u64 {
        self.duplicates[rank].load(Ordering::Relaxed)
    }

    /// Rank failures observed by one rank.
    pub fn rank_failures_from(&self, rank: usize) -> u64 {
        self.rank_failures[rank].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        total(&self.bytes_sent)
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        total(&self.messages_sent)
    }

    /// Total frame resends across all ranks.
    pub fn total_retries(&self) -> u64 {
        total(&self.retries)
    }

    /// Total deadline misses across all ranks.
    pub fn total_timeouts(&self) -> u64 {
        total(&self.timeouts)
    }

    /// Total corrupt frames observed across all ranks.
    pub fn total_corrupt_frames(&self) -> u64 {
        total(&self.corrupt_frames)
    }

    /// Total duplicate frames suppressed across all ranks.
    pub fn total_duplicates(&self) -> u64 {
        total(&self.duplicates)
    }

    /// Total rank failures observed across all ranks.
    pub fn total_rank_failures(&self) -> u64 {
        total(&self.rank_failures)
    }

    /// Maximum bytes sent by any single rank (the communication-bound rank).
    pub fn max_bytes_per_rank(&self) -> u64 {
        self.bytes_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let s = CommStats::new(3);
        s.record_send(0, 100);
        s.record_send(0, 50);
        s.record_send(2, 300);
        assert_eq!(s.ranks(), 3);
        assert_eq!(s.bytes_from(0), 150);
        assert_eq!(s.bytes_from(1), 0);
        assert_eq!(s.messages_from(0), 2);
        assert_eq!(s.total_bytes(), 450);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.max_bytes_per_rank(), 300);
        let c = s.clone();
        assert_eq!(c.total_bytes(), 450);
    }

    #[test]
    fn robustness_counters_track_per_rank() {
        let s = CommStats::new(2);
        s.record_retry(0);
        s.record_retry(0);
        s.record_timeout(1);
        s.record_corrupt_frame(1);
        s.record_duplicate(0);
        s.record_rank_failure(1);
        assert_eq!(s.retries_from(0), 2);
        assert_eq!(s.retries_from(1), 0);
        assert_eq!(s.total_retries(), 2);
        assert_eq!(s.timeouts_from(1), 1);
        assert_eq!(s.total_timeouts(), 1);
        assert_eq!(s.corrupt_frames_from(1), 1);
        assert_eq!(s.total_corrupt_frames(), 1);
        assert_eq!(s.duplicates_from(0), 1);
        assert_eq!(s.total_duplicates(), 1);
        assert_eq!(s.rank_failures_from(1), 1);
        assert_eq!(s.total_rank_failures(), 1);
        let c = s.clone();
        assert_eq!(c.total_retries(), 2);
        assert_eq!(c.total_rank_failures(), 1);
    }

    #[test]
    fn empty_stats() {
        let s = CommStats::new(0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_retries(), 0);
        assert_eq!(s.max_bytes_per_rank(), 0);
    }
}
