//! Communication accounting.
//!
//! Every `send` in the universe records its payload size here.  The distributed
//! benchmark (Fig. 16) feeds these volumes into the network time model instead of
//! measuring wall-clock communication, because all ranks share one physical core in
//! the reproduction environment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-rank communication statistics.
#[derive(Debug)]
pub struct CommStats {
    bytes_sent: Vec<AtomicU64>,
    messages_sent: Vec<AtomicU64>,
}

impl Clone for CommStats {
    fn clone(&self) -> Self {
        CommStats {
            bytes_sent: self
                .bytes_sent
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
            messages_sent: self
                .messages_sent
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl CommStats {
    /// Create counters for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        CommStats {
            bytes_sent: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            messages_sent: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record a send of `bytes` bytes from `rank`.
    pub fn record_send(&self, rank: usize, bytes: usize) {
        self.bytes_sent[rank].fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_sent[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of ranks covered.
    pub fn ranks(&self) -> usize {
        self.bytes_sent.len()
    }

    /// Bytes sent by one rank.
    pub fn bytes_from(&self, rank: usize) -> u64 {
        self.bytes_sent[rank].load(Ordering::Relaxed)
    }

    /// Messages sent by one rank.
    pub fn messages_from(&self, rank: usize) -> u64 {
        self.messages_sent[rank].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    /// Maximum bytes sent by any single rank (the communication-bound rank).
    pub fn max_bytes_per_rank(&self) -> u64 {
        self.bytes_sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let s = CommStats::new(3);
        s.record_send(0, 100);
        s.record_send(0, 50);
        s.record_send(2, 300);
        assert_eq!(s.ranks(), 3);
        assert_eq!(s.bytes_from(0), 150);
        assert_eq!(s.bytes_from(1), 0);
        assert_eq!(s.messages_from(0), 2);
        assert_eq!(s.total_bytes(), 450);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.max_bytes_per_rank(), 300);
        let c = s.clone();
        assert_eq!(c.total_bytes(), 450);
    }

    #[test]
    fn empty_stats() {
        let s = CommStats::new(0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.max_bytes_per_rank(), 0);
    }
}
