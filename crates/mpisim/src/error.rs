//! Typed communicator failures.
//!
//! Every blocking operation of [`Comm`](crate::Comm) — `send`, `recv`,
//! `barrier`, `allgather`, `bcast`, `allreduce_sum`, `split` — runs against a
//! deadline from [`CommConfig`](crate::CommConfig) and reports breakdowns
//! through this enum instead of hanging or panicking.  The variants map onto
//! the solver-wide [`SolverError`] taxonomy via [`From`], so the distributed
//! paths in `h2-factor` surface communicator faults exactly like numerical
//! ones.

use h2_matrix::{CommFaultKind, SolverError};

/// Result alias for communicator operations.
pub type CommResult<T> = std::result::Result<T, CommError>;

/// A communicator operation failed.
///
/// `rank` is always the *world* rank of the process reporting the failure
/// (sub-communicators report through the same per-process endpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The operation missed its deadline (including exhausted send retries).
    Timeout {
        /// The operation that timed out.
        op: &'static str,
        /// World rank reporting the timeout.
        rank: usize,
        /// Peer the operation was waiting on, when there is a single one.
        peer: Option<usize>,
        /// How long the operation waited, in milliseconds.
        waited_ms: u64,
    },
    /// A peer rank died (connection closed or heartbeats stopped).
    RankFailed {
        /// World rank reporting the failure.
        rank: usize,
        /// World rank of the dead peer (equals `rank` when this rank itself
        /// was killed by a `kill_rank` fault plan).
        failed: usize,
        /// The operation that observed the failure.
        op: &'static str,
    },
    /// A frame arrived with a checksum mismatch and retries did not repair it
    /// before the deadline.
    CorruptFrame {
        /// World rank reporting the corruption.
        rank: usize,
        /// World rank the corrupt frame claimed as its source.
        src: usize,
        /// Message tag of the corrupt frame.
        tag: u64,
    },
    /// The underlying transport connection was lost mid-operation.
    Disconnected {
        /// World rank reporting the disconnect.
        rank: usize,
        /// Peer whose connection dropped, when known.
        peer: Option<usize>,
        /// The operation that observed the disconnect.
        op: &'static str,
    },
    /// The communicator API was misused (double split submission, send to an
    /// out-of-range destination, mismatched allreduce lengths).
    Protocol {
        /// World rank reporting the misuse.
        rank: usize,
        /// Description of what was violated.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                op,
                rank,
                peer,
                waited_ms,
            } => match peer {
                Some(p) => write!(
                    f,
                    "rank {rank}: {op} timed out after {waited_ms} ms waiting on rank {p}"
                ),
                None => write!(f, "rank {rank}: {op} timed out after {waited_ms} ms"),
            },
            CommError::RankFailed { rank, failed, op } => {
                if rank == failed {
                    write!(f, "rank {rank}: killed during {op}")
                } else {
                    write!(f, "rank {rank}: peer rank {failed} failed during {op}")
                }
            }
            CommError::CorruptFrame { rank, src, tag } => write!(
                f,
                "rank {rank}: frame from rank {src} (tag {tag:#x}) failed checksum verification"
            ),
            CommError::Disconnected { rank, peer, op } => match peer {
                Some(p) => write!(f, "rank {rank}: connection to rank {p} lost during {op}"),
                None => write!(f, "rank {rank}: transport disconnected during {op}"),
            },
            CommError::Protocol { rank, detail } => {
                write!(f, "rank {rank}: protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for SolverError {
    fn from(e: CommError) -> Self {
        let kind = match e {
            CommError::Timeout { .. } => CommFaultKind::Timeout,
            CommError::RankFailed { .. } => CommFaultKind::RankFailed,
            CommError::CorruptFrame { .. } => CommFaultKind::CorruptFrame,
            CommError::Disconnected { .. } => CommFaultKind::Disconnected,
            CommError::Protocol { .. } => CommFaultKind::Protocol,
        };
        SolverError::Comm {
            kind,
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_ranks_and_ops() {
        let e = CommError::Timeout {
            op: "recv",
            rank: 2,
            peer: Some(5),
            waited_ms: 300,
        };
        let s = e.to_string();
        assert!(s.contains("rank 2") && s.contains("rank 5") && s.contains("300"));
        let e = CommError::RankFailed {
            rank: 1,
            failed: 1,
            op: "barrier",
        };
        assert!(e.to_string().contains("killed"));
    }

    #[test]
    fn maps_onto_solver_error_kinds() {
        let cases: Vec<(CommError, CommFaultKind)> = vec![
            (
                CommError::Timeout {
                    op: "recv",
                    rank: 0,
                    peer: None,
                    waited_ms: 1,
                },
                CommFaultKind::Timeout,
            ),
            (
                CommError::RankFailed {
                    rank: 0,
                    failed: 1,
                    op: "recv",
                },
                CommFaultKind::RankFailed,
            ),
            (
                CommError::CorruptFrame {
                    rank: 0,
                    src: 1,
                    tag: 7,
                },
                CommFaultKind::CorruptFrame,
            ),
            (
                CommError::Disconnected {
                    rank: 0,
                    peer: Some(1),
                    op: "send",
                },
                CommFaultKind::Disconnected,
            ),
            (
                CommError::Protocol {
                    rank: 0,
                    detail: "x".into(),
                },
                CommFaultKind::Protocol,
            ),
        ];
        for (e, want) in cases {
            match SolverError::from(e) {
                SolverError::Comm { kind, detail } => {
                    assert_eq!(kind, want);
                    assert!(!detail.is_empty());
                }
                other => panic!("expected Comm, got {other:?}"),
            }
        }
    }
}
