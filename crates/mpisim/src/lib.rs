//! # h2-mpisim — in-process distributed-memory substrate
//!
//! The paper's distributed experiments (§V, Fig. 16) run on up to 10,240 cores with
//! MPI, exchanging data through `Allgather` collectives over communicators that are
//! split along a full binary *process tree* (Fig. 8).  This crate provides the same
//! programming model without MPI:
//!
//! * [`comm`] — a [`Universe`](comm::Universe) spawns `P` ranks as threads; each rank
//!   gets a [`Comm`](comm::Comm) handle with `send`/`recv`, `barrier`, `allgather`,
//!   `bcast`, `allreduce_sum` and `split` — the subset of MPI the algorithm needs.
//!   Every blocking operation runs against a deadline from
//!   [`CommConfig`](comm::CommConfig) and returns a typed
//!   [`CommError`](error::CommError) instead of hanging,
//! * [`transport`] — the pluggable unreliable frame pipe underneath: in-process
//!   channels or localhost TCP sockets (`H2_TRANSPORT=channel|socket`), with
//!   checksummed, acknowledged, retried frames layered on top in [`comm`],
//! * [`error`] — the communicator failure taxonomy (`Timeout`, `RankFailed`,
//!   `CorruptFrame`, `Disconnected`, `Protocol`), convertible into the
//!   solver-wide `SolverError`,
//! * [`process_tree`] — the full binary process tree of the paper's partitioning
//!   scheme, mapping cluster-tree nodes to rank ranges,
//! * [`counters`] — per-rank communication volume/message accounting plus
//!   robustness counters (retries, timeouts, corrupt frames, duplicates, rank
//!   failures),
//! * [`netmodel`] — an (alpha, beta) latency/bandwidth model that converts recorded
//!   communication volumes into simulated time for core counts far beyond what the
//!   reproduction machine can host (see DESIGN.md §3).
//!
//! Functional correctness is exercised with real threads (small rank counts); the
//! Fig. 16 scaling numbers come from the cost model driven by the measured per-rank
//! work and communication volumes.  Network fault injection (`H2_FAULT` specs
//! `drop_msg`/`corrupt_msg`/`delay_msg`/`dup_msg`/`kill_rank`) happens inside the
//! transport send path, so retry, integrity and failure-detection machinery is
//! exercised by the same code paths real packet loss would take.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod comm;
pub mod counters;
pub mod error;
pub mod netmodel;
pub mod process_tree;
pub mod transport;

pub use comm::{Comm, CommConfig, Universe};
pub use counters::CommStats;
pub use error::{CommError, CommResult};
pub use netmodel::{allgather_time, reduce_time, NetworkModel};
pub use process_tree::ProcessTree;
pub use transport::{TransportKind, Xxh64};
