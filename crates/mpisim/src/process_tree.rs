//! The full binary process tree of the paper's distributed partitioning (Fig. 8).
//!
//! "Since it is always possible to split the range of processes in half (for odd
//! numbers roughly half), the process tree … is always a full binary tree, regardless
//! of the underlying geometry or the type of matrix.  The rows and columns of the
//! H²-matrix also form a full binary tree, which is usually deeper than the process
//! tree.  This means that the lower levels of the row/column tree are grafted to the
//! leaves of the process tree."
//!
//! [`ProcessTree`] encodes exactly that: a node of the cluster tree at level `l`,
//! index `i` is owned by a contiguous range of ranks; once the range becomes a single
//! rank, all deeper descendants of that cluster live on that rank.  Upper levels are
//! replicated ("computed redundantly by multiple processes"), so there is no single
//! owner above the grafting point — instead every rank in the range holds a copy.

/// A full binary tree over `ranks` processes.
#[derive(Debug, Clone)]
pub struct ProcessTree {
    /// Total number of ranks.
    pub ranks: usize,
    /// Depth of the process tree: the smallest `d` with `2^d >= ranks`.
    pub depth: usize,
}

impl ProcessTree {
    /// Build a process tree over `ranks` processes.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "process tree needs at least one rank");
        let mut depth = 0;
        while (1usize << depth) < ranks {
            depth += 1;
        }
        ProcessTree { ranks, depth }
    }

    /// Rank range `[lo, hi)` owning the cluster-tree node `(level, index)`.
    ///
    /// For levels at or below the process-tree depth the range is a single rank
    /// (clusters are grafted onto ranks); above it, the node is shared by all ranks
    /// whose leaf clusters descend from it.
    pub fn owners(&self, level: usize, index: usize) -> (usize, usize) {
        assert!(index < (1usize << level), "index out of range for level");
        if level >= self.depth {
            // Grafted: the owning rank is the ancestor index at the process-tree depth,
            // scaled onto the actual (possibly non-power-of-two) rank count.
            let ancestor = index >> (level - self.depth);
            let rank = self.leaf_to_rank(ancestor);
            (rank, rank + 1)
        } else {
            // Shared by all ranks under this subtree.
            let width = 1usize << (self.depth - level);
            let lo_leaf = index * width;
            let hi_leaf = (index + 1) * width;
            (self.leaf_to_rank(lo_leaf), self.leaf_to_rank_hi(hi_leaf))
        }
    }

    /// The single rank owning cluster `(level, index)` when `level >= depth`, or the
    /// first rank of the owning range otherwise.
    pub fn owner(&self, level: usize, index: usize) -> usize {
        self.owners(level, index).0
    }

    /// True if `rank` participates in (owns or redundantly computes) node `(level, index)`.
    pub fn participates(&self, rank: usize, level: usize, index: usize) -> bool {
        let (lo, hi) = self.owners(level, index);
        rank >= lo && rank < hi
    }

    /// The cluster index at `level` that `rank`'s data belongs to (the ancestor of the
    /// rank's leaf range).
    pub fn cluster_of_rank(&self, rank: usize, level: usize) -> usize {
        assert!(rank < self.ranks);
        let leaf = self.rank_to_leaf(rank);
        if level >= self.depth {
            leaf << (level - self.depth)
        } else {
            leaf >> (self.depth - level)
        }
    }

    /// Level at which ranges of ranks merge pairwise: at process-tree level `l`, each
    /// node spans `2^(depth - l)` leaf slots.
    pub fn ranks_per_node(&self, level: usize) -> usize {
        if level >= self.depth {
            1
        } else {
            // Approximate for non-power-of-two rank counts: width in leaf slots.
            1usize << (self.depth - level)
        }
    }

    /// Map a process-tree leaf slot (0..2^depth) to an actual rank (0..ranks), spreading
    /// slots as evenly as possible when `ranks` is not a power of two.
    fn leaf_to_rank(&self, leaf: usize) -> usize {
        let slots = 1usize << self.depth;
        (leaf * self.ranks) / slots
    }

    fn leaf_to_rank_hi(&self, leaf_hi: usize) -> usize {
        let slots = 1usize << self.depth;
        (leaf_hi * self.ranks).div_ceil(slots)
    }

    /// Map a rank to its first process-tree leaf slot.
    fn rank_to_leaf(&self, rank: usize) -> usize {
        let slots = 1usize << self.depth;
        // Inverse of leaf_to_rank (first slot whose mapped rank is `rank`).
        (rank * slots).div_ceil(self.ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_ranks() {
        let pt = ProcessTree::new(8);
        assert_eq!(pt.depth, 3);
        // At the leaf level of the process tree every rank owns one node.
        for i in 0..8 {
            assert_eq!(pt.owners(3, i), (i, i + 1));
            assert_eq!(pt.owner(3, i), i);
        }
        // One level up, pairs of ranks share a node.
        assert_eq!(pt.owners(2, 0), (0, 2));
        assert_eq!(pt.owners(2, 3), (6, 8));
        // Root is shared by everyone.
        assert_eq!(pt.owners(0, 0), (0, 8));
        assert!(pt.participates(5, 0, 0));
        assert!(pt.participates(5, 2, 2));
        assert!(!pt.participates(5, 2, 0));
    }

    #[test]
    fn deeper_cluster_levels_are_grafted_onto_single_ranks() {
        let pt = ProcessTree::new(4);
        assert_eq!(pt.depth, 2);
        // Cluster level 4 has 16 nodes; each group of 4 consecutive nodes lives on one rank.
        for i in 0..16 {
            let (lo, hi) = pt.owners(4, i);
            assert_eq!(hi, lo + 1);
            assert_eq!(lo, i / 4);
        }
        assert_eq!(pt.cluster_of_rank(2, 4), 8);
        assert_eq!(pt.cluster_of_rank(2, 2), 2);
        assert_eq!(pt.cluster_of_rank(2, 1), 1);
        assert_eq!(pt.cluster_of_rank(2, 0), 0);
    }

    #[test]
    fn non_power_of_two_ranks_cover_all_nodes() {
        let pt = ProcessTree::new(6);
        assert_eq!(pt.depth, 3);
        // Every leaf-level node maps to a valid rank and all ranks are used.
        let mut used = [false; 6];
        for i in 0..8 {
            let r = pt.owner(3, i);
            assert!(r < 6);
            used[r] = true;
        }
        assert!(
            used.iter().all(|&u| u),
            "every rank owns at least one leaf slot"
        );
        // Root covers all ranks.
        assert_eq!(pt.owners(0, 0), (0, 6));
    }

    #[test]
    fn ranks_per_node_shrinks_with_level() {
        let pt = ProcessTree::new(16);
        assert_eq!(pt.ranks_per_node(0), 16);
        assert_eq!(pt.ranks_per_node(2), 4);
        assert_eq!(pt.ranks_per_node(4), 1);
        assert_eq!(pt.ranks_per_node(7), 1);
    }

    #[test]
    fn single_rank_tree() {
        let pt = ProcessTree::new(1);
        assert_eq!(pt.depth, 0);
        assert_eq!(pt.owners(0, 0), (0, 1));
        assert_eq!(pt.owners(3, 5), (0, 1));
        assert!(pt.participates(0, 2, 1));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = ProcessTree::new(0);
    }
}
