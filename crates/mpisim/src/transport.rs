//! The `Transport` abstraction: an *unreliable* frame pipe between ranks.
//!
//! A transport only moves [`Frame`]s; everything that makes communication
//! dependable — checksum verification, acknowledgements, retry with backoff,
//! duplicate suppression, heartbeat-based failure detection — lives one layer
//! up in the reliable endpoint (`comm.rs`) and is therefore identical across
//! backends.  Two backends exist:
//!
//! * [`ChannelTransport`] — the original in-process crossbeam channels (the
//!   perfect-network simulation path),
//! * [`SocketTransport`] — localhost TCP with length-prefixed wire frames,
//!   the first backend where frames cross a real kernel boundary and the
//!   prerequisite for spawning worker *processes* in a follow-up.
//!
//! Frames carry `(src, tag, seq, checksum, payload)`; the checksum is an
//! XXH64 digest over the header and the raw f64 bit patterns, so a corrupted
//! frame is detected bit-exactly on both backends.

use crate::error::{CommError, CommResult};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Which backend a universe runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process crossbeam channels (perfect network).
    #[default]
    Channel,
    /// Localhost TCP sockets (length-prefixed frames, real kernel boundary).
    Socket,
}

impl TransportKind {
    /// Read the backend from `H2_TRANSPORT` (`channel` | `socket`), defaulting
    /// to [`TransportKind::Channel`].  Unknown values are reported once on
    /// stderr and ignored — transport selection must never abort a run.
    pub fn from_env() -> Self {
        match std::env::var("H2_TRANSPORT").as_deref() {
            Ok("socket") => TransportKind::Socket,
            Ok("channel") | Err(_) => TransportKind::Channel,
            Ok(other) => {
                eprintln!("H2_TRANSPORT ignored: unknown backend '{other}'");
                TransportKind::Channel
            }
        }
    }
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A payload-bearing message; acknowledged and checksum-verified.
    Data,
    /// Acknowledgement of a data frame (`seq` echoes the data frame's).
    Ack,
    /// Liveness beacon from a peer's heartbeat thread.
    Heartbeat,
    /// Synthesized locally when a peer's connection closes (never on the wire).
    PeerClosed,
}

impl FrameKind {
    fn to_wire(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Heartbeat => 2,
            FrameKind::PeerClosed => 3,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            2 => Some(FrameKind::Heartbeat),
            _ => None, // PeerClosed is local-only; anything else is garbage
        }
    }
}

/// A message in flight between two world ranks.
#[derive(Debug, Clone)]
pub struct Frame {
    /// World rank of the sender.
    pub src: usize,
    /// Communicator the payload belongs to (sub-communicators multiplex over
    /// the world endpoint; 0 is the world communicator).
    pub comm_id: u64,
    /// Caller-visible message tag.
    pub tag: u64,
    /// Per `(src, dest)` sequence number; acks echo it, receivers dedup on it.
    pub seq: u64,
    /// Frame class.
    pub kind: FrameKind,
    /// XXH64 over header + payload bits (data frames; 0 otherwise).
    pub checksum: u64,
    /// Flat f64 payload (empty for control frames).
    pub payload: Vec<f64>,
}

impl Frame {
    /// Build a data frame with its checksum filled in.
    pub fn data(src: usize, comm_id: u64, tag: u64, seq: u64, payload: Vec<f64>) -> Self {
        let mut f = Frame {
            src,
            comm_id,
            tag,
            seq,
            kind: FrameKind::Data,
            checksum: 0,
            payload,
        };
        f.checksum = f.expected_checksum();
        f
    }

    /// Build an ack for a data frame with sequence number `seq`.
    pub fn ack(src: usize, seq: u64) -> Self {
        Frame {
            src,
            comm_id: 0,
            tag: 0,
            seq,
            kind: FrameKind::Ack,
            checksum: 0,
            payload: Vec::new(),
        }
    }

    /// Build a heartbeat beacon.
    pub fn heartbeat(src: usize) -> Self {
        Frame {
            src,
            comm_id: 0,
            tag: 0,
            seq: 0,
            kind: FrameKind::Heartbeat,
            checksum: 0,
            payload: Vec::new(),
        }
    }

    fn peer_closed(src: usize) -> Self {
        Frame {
            src,
            comm_id: 0,
            tag: 0,
            seq: 0,
            kind: FrameKind::PeerClosed,
            checksum: 0,
            payload: Vec::new(),
        }
    }

    /// The checksum this frame *should* carry given its header and payload.
    pub fn expected_checksum(&self) -> u64 {
        let mut x = Xxh64::new(0x9e2a_5c17);
        x.write_u64(self.src as u64);
        x.write_u64(self.comm_id);
        x.write_u64(self.tag);
        x.write_u64(self.seq);
        x.write_u64(self.payload.len() as u64);
        for v in &self.payload {
            x.write_u64(v.to_bits());
        }
        x.finish()
    }

    /// Verify the carried checksum (data frames only; control frames pass).
    pub fn checksum_ok(&self) -> bool {
        self.kind != FrameKind::Data || self.checksum == self.expected_checksum()
    }
}

// --------------------------------------------------------------------- xxh64

/// Streaming XXH64 over u64 words (every field we hash is u64-shaped, so the
/// stripe buffer never deals in partial bytes).
pub struct Xxh64 {
    acc: [u64; 4],
    /// Pending words of the current 32-byte stripe.
    buf: [u64; 4],
    buffered: usize,
    total_words: u64,
    seed: u64,
}

const P1: u64 = 0x9E3779B185EBCA87;
const P2: u64 = 0xC2B2AE3D27D4EB4F;
const P3: u64 = 0x165667B19E3779F9;
const P4: u64 = 0x85EBCA77C2B2AE63;
const P5: u64 = 0x27D4EB2F165667C5;

impl Xxh64 {
    /// Start a digest with the given seed.
    pub fn new(seed: u64) -> Self {
        Xxh64 {
            acc: [
                seed.wrapping_add(P1).wrapping_add(P2),
                seed.wrapping_add(P2),
                seed,
                seed.wrapping_sub(P1),
            ],
            buf: [0; 4],
            buffered: 0,
            total_words: 0,
            seed,
        }
    }

    /// Feed one 8-byte word.
    pub fn write_u64(&mut self, w: u64) {
        self.buf[self.buffered] = w;
        self.buffered += 1;
        self.total_words += 1;
        if self.buffered == 4 {
            for i in 0..4 {
                self.acc[i] = Self::round(self.acc[i], self.buf[i]);
            }
            self.buffered = 0;
        }
    }

    fn round(acc: u64, input: u64) -> u64 {
        acc.wrapping_add(input.wrapping_mul(P2))
            .rotate_left(31)
            .wrapping_mul(P1)
    }

    fn merge_round(acc: u64, val: u64) -> u64 {
        (acc ^ Self::round(0, val))
            .wrapping_mul(P1)
            .wrapping_add(P4)
    }

    /// Finish and return the digest.
    pub fn finish(&self) -> u64 {
        let mut h = if self.total_words >= 4 {
            let mut h = self.acc[0]
                .rotate_left(1)
                .wrapping_add(self.acc[1].rotate_left(7))
                .wrapping_add(self.acc[2].rotate_left(12))
                .wrapping_add(self.acc[3].rotate_left(18));
            for a in self.acc {
                h = Self::merge_round(h, a);
            }
            h
        } else {
            self.seed.wrapping_add(P5)
        };
        h = h.wrapping_add(self.total_words * 8);
        for i in 0..self.buffered {
            h = (h ^ Self::round(0, self.buf[i]))
                .rotate_left(27)
                .wrapping_mul(P1)
                .wrapping_add(P4);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(P2);
        h ^= h >> 29;
        h = h.wrapping_mul(P3);
        h ^= h >> 32;
        h
    }
}

// ------------------------------------------------------------ the trait

/// An unreliable frame pipe: push frames toward peers, pop incoming frames.
///
/// Implementations must be cheaply shareable across the rank thread and its
/// heartbeat thread (`&self` everywhere).
pub trait Transport: Send + Sync {
    /// Push `frame` toward world rank `dest`.  Delivery is not guaranteed
    /// (fault injection, closed peers); a hard transport failure returns
    /// `Disconnected`.
    fn send_frame(&self, dest: usize, frame: &Frame) -> CommResult<()>;

    /// Pop the next incoming frame, waiting at most `timeout`.
    /// `Ok(None)` means the wait elapsed with nothing to deliver.
    fn recv_frame(&self, timeout: Duration) -> CommResult<Option<Frame>>;

    /// Which backend this is.
    fn kind(&self) -> TransportKind;
}

// ------------------------------------------------------- channel backend

/// In-process backend: one unbounded channel per rank.
pub struct ChannelTransport {
    rank: usize,
    senders: Vec<Sender<Frame>>,
    inbox: Receiver<Frame>,
}

impl ChannelTransport {
    /// Build the full mesh for `size` ranks.
    pub fn world(size: usize) -> Vec<ChannelTransport> {
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| ChannelTransport {
                rank,
                senders: senders.clone(),
                inbox,
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn send_frame(&self, dest: usize, frame: &Frame) -> CommResult<()> {
        let sender = self.senders.get(dest).ok_or_else(|| CommError::Protocol {
            rank: self.rank,
            detail: format!("send to out-of-range rank {dest}"),
        })?;
        sender
            .send(frame.clone())
            .map_err(|_| CommError::Disconnected {
                rank: self.rank,
                peer: Some(dest),
                op: "send_frame",
            })
    }

    fn recv_frame(&self, timeout: Duration) -> CommResult<Option<Frame>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            // Every rank holds the full sender vector (including its own), so
            // a disconnect can only mean universe teardown: nothing to deliver.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Channel
    }
}

// -------------------------------------------------------- socket backend

/// Wire header: payload word count (u32), src (u32), comm_id, tag, seq (u64
/// each), kind (u8), checksum (u64).
const WIRE_HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 8 + 1 + 8;
/// Sanity bound on the payload length field (2^26 doubles = 512 MiB).
const MAX_PAYLOAD_WORDS: u32 = 1 << 26;

fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HEADER_BYTES + frame.payload.len() * 8);
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&(frame.src as u32).to_le_bytes());
    out.extend_from_slice(&frame.comm_id.to_le_bytes());
    out.extend_from_slice(&frame.tag.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.push(frame.kind.to_wire());
    out.extend_from_slice(&frame.checksum.to_le_bytes());
    for v in &frame.payload {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn read_exact_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Read one frame off a stream.  `Ok(None)` on clean EOF at a frame boundary.
fn decode_frame(stream: &mut TcpStream) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; WIRE_HEADER_BYTES];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let words = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if words > MAX_PAYLOAD_WORDS {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length out of bounds",
        ));
    }
    let src = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    let comm_id = read_exact_u64(&header, 8);
    let tag = read_exact_u64(&header, 16);
    let seq = read_exact_u64(&header, 24);
    let kind = FrameKind::from_wire(header[32]).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "unknown frame kind")
    })?;
    let checksum = read_exact_u64(&header, 33);
    let mut payload_bytes = vec![0u8; words as usize * 8];
    stream.read_exact(&mut payload_bytes)?;
    let payload = payload_bytes
        .chunks_exact(8)
        .map(|c| {
            let mut b = [0u8; 8];
            b.copy_from_slice(c);
            f64::from_bits(u64::from_le_bytes(b))
        })
        .collect();
    Ok(Some(Frame {
        src,
        comm_id,
        tag,
        seq,
        kind,
        checksum,
        payload,
    }))
}

/// Localhost TCP backend: a full mesh of streams, one reader thread per
/// incoming stream feeding a single inbox channel.
pub struct SocketTransport {
    rank: usize,
    /// Write half per peer (`None` at `rank` itself).
    peers: Vec<Option<Arc<Mutex<TcpStream>>>>,
    inbox: Receiver<Frame>,
    /// Loopback for self-sends; also keeps the inbox alive after readers exit.
    loopback: Sender<Frame>,
}

impl SocketTransport {
    /// Build the localhost mesh for `size` ranks: `size` ephemeral listeners,
    /// rank `i` dials every rank `j > i` and identifies itself with a 4-byte
    /// handshake.  Reader threads are detached; they exit on EOF when the
    /// remote write halves drop at universe teardown.
    pub fn world(size: usize) -> std::io::Result<Vec<SocketTransport>> {
        let mut listeners = Vec::with_capacity(size);
        let mut addrs = Vec::with_capacity(size);
        for _ in 0..size {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        // conns[i][j]: rank i's stream to rank j.
        let mut conns: Vec<Vec<Option<TcpStream>>> = (0..size)
            .map(|_| (0..size).map(|_| None).collect())
            .collect();
        for i in 0..size {
            for j in i + 1..size {
                let out = TcpStream::connect(addrs[j])?;
                out.set_nodelay(true)?;
                let mut out_w = out.try_clone()?;
                out_w.write_all(&(i as u32).to_le_bytes())?;
                out_w.flush()?;
                let (mut inc, _) = listeners[j].accept()?;
                inc.set_nodelay(true)?;
                let mut hello = [0u8; 4];
                inc.read_exact(&mut hello)?;
                let who = u32::from_le_bytes(hello) as usize;
                if who != i {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("handshake expected rank {i}, got {who}"),
                    ));
                }
                conns[i][j] = Some(out);
                conns[j][i] = Some(inc);
            }
        }
        let mut transports = Vec::with_capacity(size);
        for (rank, row) in conns.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            let mut peers: Vec<Option<Arc<Mutex<TcpStream>>>> = Vec::with_capacity(size);
            for (peer, stream) in row.into_iter().enumerate() {
                match stream {
                    None => peers.push(None),
                    Some(s) => {
                        let mut read_half = s.try_clone()?;
                        let tx = tx.clone();
                        std::thread::Builder::new()
                            .name(format!("mpisim-sock-{rank}-from-{peer}"))
                            .spawn(move || loop {
                                match decode_frame(&mut read_half) {
                                    Ok(Some(frame)) => {
                                        if tx.send(frame).is_err() {
                                            return;
                                        }
                                    }
                                    Ok(None) | Err(_) => {
                                        let _ = tx.send(Frame::peer_closed(peer));
                                        return;
                                    }
                                }
                            })
                            .map_err(std::io::Error::other)?;
                        peers.push(Some(Arc::new(Mutex::new(s))));
                    }
                }
            }
            transports.push(SocketTransport {
                rank,
                peers,
                inbox: rx,
                loopback: tx,
            });
        }
        Ok(transports)
    }
}

impl Transport for SocketTransport {
    fn send_frame(&self, dest: usize, frame: &Frame) -> CommResult<()> {
        if dest == self.rank {
            return self
                .loopback
                .send(frame.clone())
                .map_err(|_| CommError::Disconnected {
                    rank: self.rank,
                    peer: Some(dest),
                    op: "send_frame",
                });
        }
        let slot = self.peers.get(dest).ok_or_else(|| CommError::Protocol {
            rank: self.rank,
            detail: format!("send to out-of-range rank {dest}"),
        })?;
        let stream = slot.as_ref().ok_or_else(|| CommError::Protocol {
            rank: self.rank,
            detail: format!("no connection slot for rank {dest}"),
        })?;
        let bytes = encode_frame(frame);
        let mut guard = stream.lock();
        guard
            .write_all(&bytes)
            .and_then(|_| guard.flush())
            .map_err(|_| CommError::Disconnected {
                rank: self.rank,
                peer: Some(dest),
                op: "send_frame",
            })
    }

    fn recv_frame(&self, timeout: Duration) -> CommResult<Option<Frame>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Socket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_payload_and_header_tampering() {
        let f = Frame::data(1, 0, 42, 7, vec![1.0, -2.5, 3.25]);
        assert!(f.checksum_ok());
        let mut g = f.clone();
        g.payload[1] = -2.5000001;
        assert!(!g.checksum_ok());
        let mut g = f.clone();
        g.tag ^= 1;
        assert!(!g.checksum_ok());
        let mut g = f.clone();
        g.checksum ^= 0xdead_beef;
        assert!(!g.checksum_ok());
        // Control frames carry no checksum and always verify.
        assert!(Frame::ack(0, 3).checksum_ok());
        assert!(Frame::heartbeat(2).checksum_ok());
    }

    #[test]
    fn xxh64_is_stable_and_word_sensitive() {
        let digest = |words: &[u64]| {
            let mut x = Xxh64::new(7);
            for &w in words {
                x.write_u64(w);
            }
            x.finish()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[1, 2, 4]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[1, 2]));
        assert_ne!(digest(&[]), digest(&[0]));
        // Long streams exercise the 4-lane stripe path.
        let long: Vec<u64> = (0..257).collect();
        assert_eq!(digest(&long), digest(&long));
        assert_ne!(digest(&long[..256]), digest(&long));
    }

    #[test]
    fn wire_roundtrip_is_bitwise_exact() {
        let f = Frame::data(
            3,
            9,
            0xdead_beef,
            11,
            vec![std::f64::consts::PI, -0.0, 1e-300, f64::MAX],
        );
        let bytes = encode_frame(&f);
        assert_eq!(bytes.len(), WIRE_HEADER_BYTES + 4 * 8);
        // Decode through a real socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        tx.write_all(&bytes).unwrap();
        tx.flush().unwrap();
        let g = decode_frame(&mut rx).unwrap().unwrap();
        assert_eq!(g.src, f.src);
        assert_eq!(g.comm_id, f.comm_id);
        assert_eq!(g.tag, f.tag);
        assert_eq!(g.seq, f.seq);
        assert_eq!(g.kind, f.kind);
        assert_eq!(g.checksum, f.checksum);
        assert_eq!(
            g.payload.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            f.payload.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(g.checksum_ok());
        drop(tx);
        assert!(decode_frame(&mut rx).unwrap().is_none(), "clean EOF");
    }
}
