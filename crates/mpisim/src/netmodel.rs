//! (alpha, beta) network time model.
//!
//! Converts recorded communication volumes into time.  The paper's distributed runs
//! use `Allgather` collectives over split communicators; the standard cost model for a
//! recursive-doubling allgather over `p` ranks exchanging `m` bytes per rank is
//! `log2(p) * alpha + (p - 1)/p * m_total / beta`.  The default parameters are in the
//! range of the InfiniBand EDR fabric of the ABCI machine used in the paper
//! (~1-2 microseconds latency, ~12 GB/s effective per-link bandwidth); the absolute
//! values only shift the curves, not their shape, which is what the reproduction is
//! judged on.

/// Latency/bandwidth model of the interconnect.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Per-message latency in seconds (alpha).
    pub latency: f64,
    /// Bandwidth in bytes per second (1 / beta).
    pub bandwidth: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            latency: 1.5e-6,
            bandwidth: 12.0e9,
        }
    }
}

impl NetworkModel {
    /// Time for a single point-to-point message of `bytes` bytes.
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// Time of an allgather over `ranks` ranks where each rank contributes `bytes_per_rank`
/// bytes, using the recursive-doubling model.
pub fn allgather_time(model: &NetworkModel, ranks: usize, bytes_per_rank: u64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let p = ranks as f64;
    let stages = p.log2().ceil();
    let total = bytes_per_rank as f64 * p;
    stages * model.latency + (p - 1.0) / p * total / model.bandwidth
}

/// Time of a reduction (or broadcast) of `bytes` bytes over `ranks` ranks (binomial tree).
pub fn reduce_time(model: &NetworkModel, ranks: usize, bytes: u64) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let stages = (ranks as f64).log2().ceil();
    stages * (model.latency + bytes as f64 / model.bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_time_is_latency_plus_transfer() {
        let m = NetworkModel {
            latency: 1e-6,
            bandwidth: 1e9,
        };
        assert!((m.p2p_time(1_000_000) - (1e-6 + 1e-3)).abs() < 1e-12);
        assert!((m.p2p_time(0) - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn allgather_scales_with_ranks_and_volume() {
        let m = NetworkModel::default();
        assert_eq!(allgather_time(&m, 1, 1 << 20), 0.0);
        let t2 = allgather_time(&m, 2, 1 << 20);
        let t16 = allgather_time(&m, 16, 1 << 20);
        assert!(t16 > t2, "more ranks move more total data");
        let small = allgather_time(&m, 8, 1 << 10);
        let big = allgather_time(&m, 8, 1 << 24);
        assert!(big > small * 100.0);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let m = NetworkModel {
            latency: 1e-3,
            bandwidth: 1e12,
        };
        let t = allgather_time(&m, 1024, 8);
        assert!(t > 9.9e-3, "10 stages of 1 ms latency each: got {t}");
        let r = reduce_time(&m, 1024, 8);
        assert!(r > 9.9e-3);
    }

    #[test]
    fn reduce_time_zero_for_single_rank() {
        assert_eq!(reduce_time(&NetworkModel::default(), 1, 100), 0.0);
    }
}
