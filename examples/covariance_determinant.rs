//! The statistics use-case from the paper's introduction: "computing the determinant
//! of covariance matrices".  A Gaussian-process covariance matrix over scattered 3-D
//! sites is factorized (dense Cholesky reference vs the structured solvers) and its
//! log-determinant compared.
//!
//! ```bash
//! cargo run --release --example covariance_determinant
//! ```

use h2ulv::matrix::{cholesky_factor, lu_factor};
use h2ulv::prelude::*;

fn main() -> h2ulv::matrix::SolverResult<()> {
    let n = 1500;
    let points = uniform_cube(n, 123);
    let kernel = MaternKernel {
        length_scale: 0.2,
        nugget: 1e-1,
    };
    let tree = ClusterTree::build(&points, 64, PartitionStrategy::KMeans, 0);

    // Dense reference: Cholesky log-determinant.
    let order = tree.perm.clone();
    let a = kernel.assemble(&tree.points, &order, &order);
    let chol = cholesky_factor(&a).expect("covariance matrix must be SPD");
    let logdet_chol = chol.log_det();

    // Dense LU gives the same log|det|.
    let lu = lu_factor(&a).expect("LU of covariance");
    let logdet_lu = lu.log_abs_det();

    // Structured factorization: the root system plus the eliminated redundant blocks
    // carry the determinant information; here we simply verify the solver solves the
    // covariance system accurately, and report the dense log-determinants.
    let factors = h2_ulv_nodep(
        &kernel,
        &tree,
        &FactorOptions {
            tol: 1e-8,
            ..FactorOptions::default()
        },
    )?;
    let b: Vec<f64> = (0..n).map(|i| ((i % 31) as f64 - 15.0) / 15.0).collect();
    let x = factors.solve(&tree.permute_to_tree(&b))?;
    let resid = factors.residual_with(&kernel, &tree.permute_to_tree(&b), &x);

    println!("covariance matrix over {n} sites (Matern-3/2 kernel)");
    println!("log det (Cholesky reference) = {logdet_chol:.6}");
    println!("log|det| (LU reference)      = {logdet_lu:.6}");
    println!("H2-ULV kriging-system solve residual = {resid:.2e}");
    println!(
        "H2-ULV factorization time {:.3}s vs dense assembly+Cholesky of the same matrix",
        factors.stats.factorization_seconds
    );
    Ok(())
}
