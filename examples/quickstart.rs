//! Quickstart: the `analyze → factorize → solve` lifecycle.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use h2ulv::prelude::*;

fn main() -> h2ulv::matrix::SolverResult<()> {
    // A 3-D problem: 2,000 particles uniformly distributed in the unit cube,
    // interacting through the Laplace Green's function (Eq. 29 of the paper).
    let n = 2000;
    let points = uniform_cube(n, 42);
    let kernel = LaplaceKernel::default();

    // ANALYZE — the symbolic phase: cluster the points with balanced k-means
    // (power-of-two leaves, as in the paper) and build the block partition.
    // Depends only on the geometry and the admissibility condition, so one
    // analysis serves every kernel and tolerance below.
    let analysis = Analysis::analyze(
        &points,
        64,
        PartitionStrategy::KMeans,
        0,
        Admissibility::strong(1.0),
    );

    // FACTORIZE — the numeric phase: the H2-ULV factorization without
    // trailing sub-matrix dependencies, against the shared analysis.
    let options = FactorOptions {
        tol: 1e-8,
        ..FactorOptions::default()
    };
    let factors = analysis.factorize(&kernel, &options)?;
    println!(
        "factorized N = {n}: {:.3}s construction, {:.3}s factorization, max rank {}, {} fill-in blocks",
        factors.stats.construction_seconds,
        factors.stats.factorization_seconds,
        factors.stats.max_rank,
        factors.stats.fillin_blocks,
    );

    // SOLVE — the cheap repeatable phase.  Single right-hand side:
    let b = vec![1.0; n];
    let x = factors.solve_original_order(&b)?;

    // Check the solution against an exact matrix-vector product.
    let b_tree = factors.tree.permute_to_tree(&b);
    let x_tree = factors.tree.permute_to_tree(&x);
    let residual = factors.residual_with(&kernel, &b_tree, &x_tree);
    println!("relative residual ||Ax - b|| / ||b|| = {residual:.3e}");
    println!("first five solution entries: {:?}", &x[..5]);

    // Many right-hand sides solve fastest as one blocked panel (`vsolve`):
    // the stored factors stream through the caches once for all columns, and
    // each column is bitwise identical to its own single-RHS solve.
    let panel_cols: Vec<Vec<f64>> = (0..8)
        .map(|j| (0..n).map(|i| ((i + 7 * j) % 13) as f64 / 13.0).collect())
        .collect();
    let panel = Matrix::from_columns(&panel_cols);
    let xs = factors.vsolve_original_order(&panel)?;
    println!(
        "panel solve: {} right-hand sides in one sweep, all finite: {}",
        xs.cols(),
        xs.as_slice().iter().all(|v| v.is_finite()),
    );

    // The same analysis refactorizes under a different tolerance without
    // re-running the symbolic phase — the factor-once/solve-many economics
    // the `h2_server` batching service is built on.
    let loose = analysis.factorize(
        &kernel,
        &FactorOptions {
            tol: 1e-4,
            ..options
        },
    )?;
    println!(
        "re-factorized at tol 1e-4 over the same analysis: max rank {} (vs {})",
        loose.stats.max_rank, factors.stats.max_rank,
    );
    Ok(())
}
