//! Quickstart: factorize and solve a dense kernel system in linear time.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use h2ulv::prelude::*;

fn main() -> h2ulv::matrix::SolverResult<()> {
    // A 3-D problem: 2,000 particles uniformly distributed in the unit cube,
    // interacting through the Laplace Green's function (Eq. 29 of the paper).
    let n = 2000;
    let points = uniform_cube(n, 42);
    let kernel = LaplaceKernel::default();

    // Cluster the points with balanced k-means (power-of-two leaves, as in the paper)
    // and factorize with the H2-ULV method without trailing sub-matrix dependencies.
    let tree = ClusterTree::build(&points, 64, PartitionStrategy::KMeans, 0);
    let options = FactorOptions {
        tol: 1e-8,
        ..FactorOptions::default()
    };
    let factors = h2_ulv_nodep(&kernel, &tree, &options)?;
    println!(
        "factorized N = {n}: {:.3}s construction, {:.3}s factorization, max rank {}, {} fill-in blocks",
        factors.stats.construction_seconds,
        factors.stats.factorization_seconds,
        factors.stats.max_rank,
        factors.stats.fillin_blocks,
    );

    // Solve A x = b for a unit-charge right-hand side.
    let b = vec![1.0; n];
    let x = factors.solve_original_order(&b)?;

    // Check the solution against an exact matrix-vector product.
    let b_tree = factors.tree.permute_to_tree(&b);
    let x_tree = factors.tree.permute_to_tree(&x);
    let residual = factors.residual_with(&kernel, &b_tree, &x_tree);
    println!("relative residual ||Ax - b|| / ||b|| = {residual:.3e}");
    println!("first five solution entries: {:?}", &x[..5]);
    Ok(())
}
