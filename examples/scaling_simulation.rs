//! Replaying the factorization's task graph on virtual cores and ranks.
//!
//! This example shows the machinery behind the strong-scaling figures: the
//! factorization records its task DAG, the scheduler simulator replays it on any
//! number of virtual cores, and the distributed cost model extends that to the
//! process-tree partitioning of the paper's Fig. 8.
//!
//! ```bash
//! cargo run --release --example scaling_simulation
//! ```

use h2ulv::factor::dist::{estimate_distributed, DistConfig};
use h2ulv::prelude::*;

fn main() -> h2ulv::matrix::SolverResult<()> {
    let n = 2048;
    let points = uniform_cube(n, 3);
    let kernel = LaplaceKernel::default();
    let tree = ClusterTree::build(&points, 64, PartitionStrategy::KMeans, 0);
    let opts = FactorOptions {
        tol: 1e-6,
        basis_mode: BasisMode::Sampled { max_samples: 384 },
        ..FactorOptions::default()
    };

    let nodep = h2_ulv_nodep(&kernel, &tree, &opts)?;
    let dep = h2_ulv_dep(&kernel, &tree, &opts)?;

    println!(
        "task graph (no dependencies):   {} tasks, average parallelism {:.1}",
        nodep.task_graph.len(),
        nodep.task_graph.total_work() / nodep.task_graph.critical_path()
    );
    println!(
        "task graph (with dependencies): {} tasks, average parallelism {:.1}",
        dep.task_graph.len(),
        dep.task_graph.total_work() / dep.task_graph.critical_path()
    );

    println!("\nshared-memory replay (virtual cores):");
    println!("cores\tno-dep (s)\twith-dep (s)");
    for &p in &[1usize, 4, 16, 64] {
        let cfg = SimConfig {
            workers: p,
            flops_per_second: 4.0e9,
            per_task_overhead: 0.0,
            min_task_time: 0.0,
        };
        let t1 = simulate_schedule(&nodep.task_graph, &cfg).makespan;
        let t2 = simulate_schedule(&dep.task_graph, &cfg).makespan;
        println!("{p}\t{t1:.4}\t\t{t2:.4}");
    }

    println!("\ndistributed replay (process tree + allgather model):");
    println!("ranks\ttime (s)\tcompute (s)\tcomm (s)");
    for &ranks in &[16usize, 64, 256, 1024] {
        let est = estimate_distributed(&nodep, ranks, &DistConfig::default());
        println!(
            "{ranks}\t{:.4}\t{:.4}\t\t{:.5}",
            est.time_seconds, est.compute_seconds, est.comm_seconds
        );
    }
    Ok(())
}
