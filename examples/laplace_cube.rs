//! The paper's §IV experiment in miniature: Laplace kernel on the unit cube,
//! comparing the H²-ULV solver against the LORAPO-style BLR baseline and a dense LU
//! reference across problem sizes.
//!
//! ```bash
//! cargo run --release --example laplace_cube
//! ```

use h2ulv::prelude::*;
use std::time::Instant;

fn main() -> h2ulv::matrix::SolverResult<()> {
    let kernel = LaplaceKernel::default();
    println!("N\tH2-ULV fact(s)\tBLR fact(s)\tdense fact(s)\tH2 resid\tBLR resid");
    for &n in &[512usize, 1024, 2048] {
        let points = uniform_cube(n, 7);
        let tree = ClusterTree::build(&points, 64, PartitionStrategy::KMeans, 0);
        let blr_tree = ClusterTree::build(&points, 256, PartitionStrategy::KMeans, 0);
        let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();

        // Ours.
        let factors = h2_ulv_nodep(
            &kernel,
            &tree,
            &FactorOptions {
                tol: 1e-8,
                ..FactorOptions::default()
            },
        )?;
        let x = factors.solve(&tree.permute_to_tree(&b))?;
        let h2_resid = factors.residual_with(&kernel, &tree.permute_to_tree(&b), &x);

        // LORAPO-style BLR LU.
        let blr = BlrLuFactors::factor(
            &kernel,
            &blr_tree,
            &BlrLuOptions {
                tol: 1e-8,
                max_rank: 50,
                ..BlrLuOptions::default()
            },
        );
        let xb = blr.solve(&blr_tree.permute_to_tree(&b));
        let order = blr_tree.perm.clone();
        let a = kernel.assemble(&blr_tree.points, &order, &order);
        let mut ax = vec![0.0; n];
        h2ulv::matrix::gemv(1.0, &a, false, &xb, 0.0, &mut ax);
        let blr_resid = rel_l2_error(&ax, &blr_tree.permute_to_tree(&b));

        // Dense LU reference timing.
        let t0 = Instant::now();
        let _xd = dense_solve(&kernel, &tree, &tree.permute_to_tree(&b));
        let dense_time = t0.elapsed().as_secs_f64();

        println!(
            "{n}\t{:.3}\t\t{:.3}\t\t{:.3}\t\t{h2_resid:.1e}\t{blr_resid:.1e}",
            factors.stats.factorization_seconds, blr.stats.factorization_seconds, dense_time
        );
    }
    println!("\nAs N grows, the O(N) H2-ULV factorization pulls ahead of both the O(N^2) BLR");
    println!("factorization and the O(N^3) dense LU — the trend behind the paper's Fig. 9.");
    Ok(())
}
