//! The paper's §V application in miniature: implicit-solvent bio-molecular
//! electrostatics.  A synthetic molecular surface (the hemoglobin stand-in of Fig. 14)
//! is discretized by collocation points, the Yukawa (screened Coulomb) kernel of
//! Eq. (30) couples them, and the resulting dense system is factorized with the
//! dependency-free H²-ULV solver.
//!
//! ```bash
//! cargo run --release --example yukawa_bem
//! ```

use h2ulv::prelude::*;

fn main() -> h2ulv::matrix::SolverResult<()> {
    // Build the molecular surface point cloud (union-of-spheres pseudo-protein).
    let cfg = MoleculeConfig::default();
    let points = molecule_surface(3000, &cfg);
    let n = points.len();
    println!("synthetic molecule surface: {n} collocation points");

    // Screened Coulomb potential with a physically plausible screening length.
    let kernel = YukawaKernel {
        alpha_m: 0.5,
        epsilon0: 1.0,
        singularity_shift: 1e-3,
    };

    // k-means clustering works much better than space-filling curves on surfaces (§V);
    // compare the two partitioning strategies' leaf-cluster quality.
    for strategy in [PartitionStrategy::KMeans, PartitionStrategy::Morton] {
        let tree = ClusterTree::build(&points, 64, strategy, 0);
        let avg_diam: f64 = (0..tree.num_leaves())
            .map(|i| tree.leaf(i).bbox.diameter())
            .sum::<f64>()
            / tree.num_leaves() as f64;
        println!("{strategy:?}: average leaf-cluster diameter {avg_diam:.2}");
    }

    let tree = ClusterTree::build(&points, 64, PartitionStrategy::KMeans, 0);
    let factors = h2_ulv_nodep(
        &kernel,
        &tree,
        &FactorOptions {
            tol: 1e-7,
            ..FactorOptions::default()
        },
    )?;
    println!(
        "factorization: {:.3}s, max rank {}, root system {}x{}",
        factors.stats.factorization_seconds,
        factors.stats.max_rank,
        factors.stats.root_dim,
        factors.stats.root_dim
    );

    // Surface charge distribution: induced potential of a unit charge distribution.
    let b = vec![1.0; n];
    let x = factors.solve_original_order(&b)?;
    let b_tree = tree.permute_to_tree(&b);
    let x_tree = tree.permute_to_tree(&x);
    let resid = factors.residual_with(&kernel, &b_tree, &x_tree);
    println!("relative residual of the BEM solve: {resid:.2e}");
    let total_charge: f64 = x.iter().sum();
    println!("sum of solved surface densities: {total_charge:.4}");
    Ok(())
}
