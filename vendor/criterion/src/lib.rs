//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness exposing the criterion API shape the workspace's
//! benches use (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`).  Reports mean wall-clock time per iteration on stdout; no
//! statistics, plots, or baselines.

use std::fmt;
use std::time::Instant;

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Passed to the closure under test; drives the timing loop.
pub struct Bencher {
    iters: u64,
    total_seconds: f64,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // One warmup iteration, then the timed batch.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total_seconds = start.elapsed().as_secs_f64();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Set the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I: fmt::Display>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            total_seconds: 0.0,
        };
        f(&mut b);
        let per_iter = b.total_seconds / b.iters.max(1) as f64;
        println!(
            "bench {}/{}: {:>12.3} us/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e6,
            b.iters
        );
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Create a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "default".to_string(),
            sample_size: 10,
        };
        group.run(id, f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warmup + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).to_string(), "gemm/64");
    }
}
