//! Offline stand-in for `rayon`.
//!
//! Implements the subset of the rayon API the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `.map(..).collect()` — with real data
//! parallelism on `std::thread::scope`.  Items are materialised up front and
//! split into contiguous index chunks, one scoped thread per chunk, so results
//! come back in input order and `collect()` works for any `FromIterator`
//! target (`Vec`, `HashMap`, ...).
//!
//! The chunk-per-thread strategy means each item is evaluated exactly once by
//! exactly one thread and the output order never depends on scheduling, which
//! keeps every caller deterministic.

use std::num::NonZeroUsize;

/// Number of worker threads to use (respects `RAYON_NUM_THREADS`).
pub fn current_num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let mut rb = None;
    let ra = std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("rayon::join: closure panicked"));
        ra
    });
    (ra, rb.expect("rayon::join: missing result"))
}

thread_local! {
    /// True on threads spawned by [`par_eval`]; lets nested users (e.g. the
    /// packed GEMM kernel) fall back to serial instead of oversubscribing.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread is itself a parallel worker spawned by this
/// crate.  Code that would spawn its own threads (nested parallelism) should
/// run serially in that case — every core is already busy with an outer item.
pub fn in_parallel_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Mark the current thread as a parallel worker for the purposes of
/// [`in_parallel_worker`].  External thread pools (the `h2-runtime` work-stealing
/// pool) call this from their worker threads so that nested kernels — the packed
/// GEMM's column-band fan-out, `par_iter` bodies — run serially instead of
/// oversubscribing cores that are already busy executing DAG tasks.
pub fn mark_worker_thread() {
    IN_WORKER.with(|w| w.set(true));
}

/// Evaluate `f` over every item, in input order, across scoped threads.
fn par_eval<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = if in_parallel_worker() {
        1 // nested parallel region: the outer fan-out already owns the cores
    } else {
        current_num_threads().min(n).max(1)
    };
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut inputs: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ins, outs) in inputs.chunks_mut(chunk).zip(outputs.chunks_mut(chunk)) {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (i, o) in ins.iter_mut().zip(outs.iter_mut()) {
                    *o = Some(f(i.take().expect("par_eval: item consumed twice")));
                }
            });
        }
    });
    outputs
        .into_iter()
        .map(|o| o.expect("par_eval: worker thread did not fill its slot"))
        .collect()
}

/// A materialised parallel iterator over owned items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Map each item through `f` (evaluated in parallel at `collect` time).
    pub fn map<R, F>(self, f: F) -> ParMap<I, R, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let _ = par_eval(self.items, &|i| f(i));
    }
}

/// A mapped parallel iterator; evaluation happens in [`ParMap::collect`].
pub struct ParMap<I, R, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<I, R, F> ParMap<I, R, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    /// Evaluate the map in parallel and collect in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        par_eval(self.items, &self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (owned items).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Materialise the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `.par_iter()` over borrowed slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_and_hashmap_collect() {
        let keys: Vec<usize> = (0..100).collect();
        let m: HashMap<usize, usize> = keys.par_iter().map(|&k| (k, k * k)).collect();
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 49);
    }

    #[test]
    fn nested_parallelism_is_serialised() {
        // Inside a worker, par_eval must not fan out again.
        let flags: Vec<bool> = (0..4usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| super::in_parallel_worker())
            .collect();
        // Outer region may or may not thread (depends on core count), but a
        // nested region inside a worker always reports worker context.
        if super::current_num_threads() > 1 {
            assert!(flags.iter().all(|&f| f));
        }
        assert!(
            !super::in_parallel_worker(),
            "flag must not leak to the caller"
        );
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
