//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface the
//! workspace uses: a [`Mutex`] whose `lock()` returns the guard directly
//! (poisoning is converted to a panic-through, matching parking_lot's absence
//! of lock poisoning for the non-poisoned path) and a [`Condvar`] whose `wait`
//! takes `&mut MutexGuard`.

use std::sync::{self, PoisonError};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard (ignores poisoning like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the guard out so std's by-value wait can run, then
        // put the reacquired guard back.  `unsafe` is avoided by a small dance
        // with Option via replace_with semantics — std's API needs ownership.
        take_mut(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wake a single waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replace `*dest` through a by-value transform.  If `f` panics the process
/// aborts (the guard cannot be left in a stale state), mirroring take_mut.
fn take_mut<T>(dest: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnPanic;
        let old = std::ptr::read(dest);
        let new = f(old);
        std::ptr::write(dest, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
