//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand 0.8` API the workspace uses:
//! [`Rng::gen_range`] over `f64`/integer ranges, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].  The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given seed,
//! which is all the workspace's seeded tests and samplers rely on.

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        self.next_f64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                // Modulo with a 64-bit source: bias is negligible for the small
                // spans used in this workspace (< 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
        // Mean of uniform [-1, 1) should be near zero.
        let mean: f64 = (0..10_000).map(|_| r.gen_range(-1.0..1.0)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn integer_range_covers_span() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
