//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel::unbounded` MPMC channel used by the `mpisim`
//! communicator.  Built on a `Mutex<VecDeque>` + `Condvar`; both endpoints are
//! cloneable and the channel reports disconnection when every [`Sender`] is
//! dropped, matching the crossbeam semantics the workspace relies on.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending endpoint (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving endpoint (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with nothing to deliver.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Push a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.items.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a value arrives, all senders are dropped, or `timeout`
        /// elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .available
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = state.items.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
