//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(..)]` header, range strategies
//! over integers and floats, `proptest::collection::vec`, and `prop_assert!`.
//! Cases are generated from a fixed-seed RNG, so failures are reproducible;
//! there is no shrinking — the failing inputs are included in the panic
//! message instead.

use rand::rngs::StdRng;
use rand::Rng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one macro binding.
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated code (not part of the real
/// proptest API; the macro below is the only intended caller).
pub mod runner {
    use super::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run `body` for `config.cases` random cases with a deterministic RNG.
    pub fn run_cases(name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
        // Seed derived from the property name so distinct properties explore
        // different streams but each run of the suite is reproducible.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        for case in 0..config.cases {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            body(&mut rng);
        }
    }
}

/// The property-test macro.  Supports the shape
/// `proptest! { #![proptest_config(expr)] #[test] fn name(x in strat, ..) { body } .. }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run_cases(stringify!($name), &config, |rng| {
                    $( let $arg = $crate::Strategy::generate(&$strat, rng); )+
                    // Report the generated inputs on failure (no shrinking).
                    $( let _ = &$arg; )+
                    $body
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),+ ) $body
            )+
        }
    };
}

/// Assertion macro used inside properties (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{prop_assert, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -1.0f64..1.0, s in 0u64..5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(s < 5, "s = {}", s);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn collection_vec_strategy(v in crate::collection::vec(1usize..6, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (1..6).contains(&x)));
        }
    }
}
